package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := NewSource(42)
	b := NewSource(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("stream diverged at %d: %d != %d", i, got, want)
		}
	}
}

func TestSeedSeparation(t *testing.T) {
	a := NewSource(1)
	b := NewSource(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams from different seeds collided %d times", same)
	}
}

func TestSubStreamIndependence(t *testing.T) {
	parent := NewSource(7)
	a := parent.Sub("oscillator/0")
	b := parent.Sub("oscillator/1")
	c := parent.Sub("oscillator/0")
	first := a.Uint64()
	if first == b.Uint64() {
		t.Fatalf("differently labelled sub-streams produced identical first value")
	}
	if first != c.Uint64() {
		t.Fatalf("identically labelled sub-streams diverged")
	}
}

func TestSubDoesNotAdvanceParent(t *testing.T) {
	a := NewSource(9)
	b := NewSource(9)
	_ = a.Sub("x")
	if a.Uint64() != b.Uint64() {
		t.Fatalf("Sub advanced the parent stream")
	}
}

func TestFloat64Range(t *testing.T) {
	s := NewSource(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := NewSource(4)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := NewSource(5)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Intn(0) did not panic")
		}
	}()
	NewSource(1).Intn(0)
}

func TestNormalMoments(t *testing.T) {
	s := NewSource(6)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := s.Normal(3, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-3) > 0.03 {
		t.Fatalf("Normal mean %v too far from 3", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.03 {
		t.Fatalf("Normal stddev %v too far from 2", math.Sqrt(variance))
	}
}

func TestExponentialMean(t *testing.T) {
	s := NewSource(8)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.Exponential(5)
		if v < 0 {
			t.Fatalf("Exponential returned negative value %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-5) > 0.1 {
		t.Fatalf("Exponential mean %v too far from 5", mean)
	}
}

func TestExponentialPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Exponential(0) did not panic")
		}
	}()
	NewSource(1).Exponential(0)
}

func TestLogNormalPositive(t *testing.T) {
	s := NewSource(10)
	for i := 0; i < 1000; i++ {
		if v := s.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal returned non-positive %v", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := NewSource(11)
	check := func(n uint8) bool {
		size := int(n%64) + 1
		p := s.Perm(size)
		if len(p) != size {
			return false
		}
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	s := NewSource(12)
	vals := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range vals {
		sum += v
	}
	s.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	got := 0
	for _, v := range vals {
		got += v
	}
	if got != sum {
		t.Fatalf("Shuffle changed element multiset: sum %d != %d", got, sum)
	}
}

func TestBoolProbability(t *testing.T) {
	s := NewSource(13)
	const n = 100000
	count := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.25) {
			count++
		}
	}
	frac := float64(count) / n
	if math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) frequency %v", frac)
	}
}

func TestUniformRange(t *testing.T) {
	s := NewSource(14)
	for i := 0; i < 10000; i++ {
		v := s.Uniform(-3, 9)
		if v < -3 || v >= 9 {
			t.Fatalf("Uniform(-3,9) out of range: %v", v)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := NewSource(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Uint64()
	}
	_ = sink
}

func BenchmarkNormal(b *testing.B) {
	s := NewSource(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += s.Normal(0, 1)
	}
	_ = sink
}
