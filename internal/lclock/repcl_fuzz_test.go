package lclock

// Fuzzing for the RepCl wire codec, mirroring FuzzEventReader: decode
// must classify every malformed input as ErrBadFormat without panicking
// or over-allocating, accepted stamps must survive an
// encode→decode→encode round trip bit for bit, and merging a decoded
// stamp into a live clock must never panic regardless of its contents.

import (
	"bytes"
	"errors"
	"testing"

	"tsync/internal/trace"
)

func FuzzRepClDecode(f *testing.F) {
	// valid stamps of a few shapes
	cfg := RepClConfig{}.Normalize()
	zero := NewRepCl(3)
	f.Add(zero.AppendBinary(nil))
	ticked := NewRepCl(3)
	ticked.Tick(cfg, 1, 0.0042)
	f.Add(ticked.AppendBinary(nil))
	merged := NewRepCl(3)
	merged.MergeRecv(cfg, 2, 0.0050, ticked)
	f.Add(merged.AppendBinary(nil))
	f.Add(RepCl{Mx: 1 << 40, Off: []uint32{0, 4, OffUnknown}, Ctr: 65535}.AppendBinary(nil))
	f.Add(RepCl{}.AppendBinary(nil)) // zero ranks
	// malformed shapes
	f.Add([]byte{})
	f.Add([]byte{0x80})                                                 // unterminated uvarint
	f.Add([]byte{0x00, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}) // huge length claim
	f.Add([]byte{0x05, 0x01, 0xff, 0xff, 0xff, 0xff, 0x7f, 0x00})       // offset > MaxUint32
	f.Add(append(ticked.AppendBinary(nil), 0x00))                       // trailing byte

	f.Fuzz(func(t *testing.T, data []byte) {
		dec, n, err := DecodeRepCl(data)
		if err != nil {
			if !errors.Is(err, trace.ErrBadFormat) {
				t.Fatalf("decode error does not wrap ErrBadFormat: %v", err)
			}
			return
		}
		if n < 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// canonical codec: re-encoding an accepted stamp reproduces the
		// consumed bytes exactly, and decoding that is a fixpoint
		enc := dec.AppendBinary(nil)
		if !bytes.Equal(enc, data[:n]) {
			t.Fatalf("re-encode mismatch: %x vs %x", enc, data[:n])
		}
		dec2, n2, err := DecodeRepCl(enc)
		if err != nil || n2 != len(enc) || !dec2.Equal(dec) {
			t.Fatalf("decode of re-encoding diverged: %+v/%d/%v", dec2, n2, err)
		}
		// UnmarshalBinary agrees, and flags trailing bytes
		var um RepCl
		if uerr := um.UnmarshalBinary(enc); uerr != nil || !um.Equal(dec) {
			t.Fatalf("UnmarshalBinary diverged: %+v, %v", um, uerr)
		}
		if n < len(data) {
			if uerr := um.UnmarshalBinary(data); !errors.Is(uerr, trace.ErrBadFormat) {
				t.Fatalf("trailing bytes accepted: %v", uerr)
			}
		}
		// merging an arbitrary decoded stamp never panics, whatever its
		// window contents — live clocks treat remote knowledge as data
		if len(dec.Off) > 0 {
			live := NewRepCl(len(dec.Off))
			if _, merr := live.MergeRecv(cfg, 0, 0.001, dec); merr != nil {
				t.Fatalf("merge of decoded stamp failed: %v", merr)
			}
		}
	})
}
