// Package render turns experiment results into terminal output: aligned
// tables (Tables I and II), CSV series and ASCII plots (Figs. 4-6), and
// VAMPIR-style time-line views of parallel regions (Fig. 3) with
// clock-condition violations highlighted.
package render

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"tsync/internal/analysis"
	"tsync/internal/trace"
)

// Table formats rows with aligned columns. headers may be nil.
func Table(headers []string, rows [][]string) string {
	widths := map[int]int{}
	consider := func(cells []string) {
		for i, c := range cells {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if headers != nil {
		consider(headers)
	}
	for _, r := range rows {
		consider(r)
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	if headers != nil {
		writeRow(headers)
		var total int
		for i := 0; i < len(headers); i++ {
			total += widths[i] + 2
		}
		b.WriteString(strings.Repeat("-", total-2))
		b.WriteByte('\n')
	}
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

// Micro formats a duration in seconds as microseconds with two decimals.
func Micro(seconds float64) string {
	return fmt.Sprintf("%.2f", seconds*1e6)
}

// SeriesCSV renders a deviation series as comma-separated columns:
// time and one deviation column (in µs) per worker.
func SeriesCSV(s analysis.Series, labels []string) string {
	var b strings.Builder
	b.WriteString("t_s")
	for i := range s.Dev {
		label := fmt.Sprintf("worker%d_us", i+1)
		if i < len(labels) {
			label = labels[i]
		}
		b.WriteByte(',')
		b.WriteString(label)
	}
	b.WriteByte('\n')
	for k, tt := range s.T {
		fmt.Fprintf(&b, "%g", tt)
		for i := range s.Dev {
			fmt.Fprintf(&b, ",%.4f", s.Dev[i][k]*1e6)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SeriesPlot renders an ASCII plot of a deviation series (y in µs) with
// one digit per worker. Optional hline draws horizontal reference lines
// (e.g. ±half message latency, the Fig. 6 annotation).
func SeriesPlot(s analysis.Series, width, height int, title string, hlines ...float64) string {
	if width < 16 {
		width = 16
	}
	if height < 5 {
		height = 5
	}
	if len(s.T) == 0 || len(s.Dev) == 0 {
		return title + "\n(empty series)\n"
	}
	ymax := s.MaxAbsDeviation()
	for _, h := range hlines {
		if a := math.Abs(h); a > ymax {
			ymax = a
		}
	}
	if ymax == 0 {
		ymax = 1e-9
	}
	ymax *= 1.05
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	row := func(v float64) int {
		r := int((1 - (v/ymax+1)/2) * float64(height-1))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	// reference lines
	for _, h := range hlines {
		r := row(h)
		for c := 0; c < width; c++ {
			grid[r][c] = '-'
		}
	}
	zero := row(0)
	for c := 0; c < width; c++ {
		if grid[zero][c] == ' ' {
			grid[zero][c] = '.'
		}
	}
	tmax := s.T[len(s.T)-1]
	if tmax == 0 {
		tmax = 1
	}
	for i := range s.Dev {
		mark := byte('1' + i%9)
		for k, tt := range s.T {
			c := int(tt / tmax * float64(width-1))
			grid[row(s.Dev[i][k])][c] = mark
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (y: ±%.1f µs, x: 0..%g s)\n", title, ymax*1e6, tmax)
	for _, r := range grid {
		b.Write(r)
		b.WriteByte('\n')
	}
	return b.String()
}

// POMPTimeline renders one parallel-region instance as a per-thread
// time-line in the style of a trace visualizer (Fig. 3):
//
//	F fork   J join   E enter   X exit   [ barrier enter   ] barrier exit
//	= inside barrier   - inside region
//
// A trailing marker flags region instances with violations.
func POMPTimeline(t *trace.Trace, region, instance int32, width int) (string, error) {
	if width < 32 {
		width = 32
	}
	type evPos struct {
		kind trace.Kind
		time float64
	}
	perThread := make([][]evPos, len(t.Procs))
	min, max := math.Inf(1), math.Inf(-1)
	found := false
	for rank, p := range t.Procs {
		for _, ev := range p.Events {
			if ev.Region != region || ev.Instance != instance {
				continue
			}
			switch ev.Kind {
			case trace.Fork, trace.Join, trace.Enter, trace.Exit, trace.BarrierEnter, trace.BarrierExit:
				perThread[rank] = append(perThread[rank], evPos{ev.Kind, ev.Time})
				if ev.Time < min {
					min = ev.Time
				}
				if ev.Time > max {
					max = ev.Time
				}
				found = true
			}
		}
	}
	if !found {
		return "", fmt.Errorf("render: region %d instance %d not in trace", region, instance)
	}
	if max <= min {
		max = min + 1e-9
	}
	col := func(tt float64) int {
		c := int((tt - min) / (max - min) * float64(width-1))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	var b strings.Builder
	fmt.Fprintf(&b, "region %q instance %d  (%.2f µs across)\n", t.RegionName(region), instance, (max-min)*1e6)
	for rank, evs := range perThread {
		line := []byte(strings.Repeat(" ", width))
		sort.Slice(evs, func(i, j int) bool { return evs[i].time < evs[j].time })
		// fills first
		var enterT, barT float64
		var inRegion, inBarrier bool
		for _, e := range evs {
			switch e.kind {
			case trace.Enter:
				enterT, inRegion = e.time, true
			case trace.Exit:
				if inRegion {
					for c := col(enterT); c <= col(e.time); c++ {
						line[c] = '-'
					}
					inRegion = false
				}
			case trace.BarrierEnter:
				barT, inBarrier = e.time, true
			case trace.BarrierExit:
				if inBarrier {
					for c := col(barT); c <= col(e.time); c++ {
						line[c] = '='
					}
					inBarrier = false
				}
			}
		}
		// marks second; fork/join last so they are never overdrawn
		for _, pass := range [2]bool{false, true} {
			for _, e := range evs {
				var mark byte
				forkJoin := false
				switch e.kind {
				case trace.Fork:
					mark, forkJoin = 'F', true
				case trace.Join:
					mark, forkJoin = 'J', true
				case trace.Enter:
					mark = 'E'
				case trace.Exit:
					mark = 'X'
				case trace.BarrierEnter:
					mark = '['
				case trace.BarrierExit:
					mark = ']'
				}
				if forkJoin == pass {
					line[col(e.time)] = mark
				}
			}
		}
		fmt.Fprintf(&b, "thread %d:%d |%s|\n", t.Procs[rank].Core.Chip, t.Procs[rank].Core.Core, line)
	}
	return b.String(), nil
}

// FirstViolatedRegion finds the first region instance with a POMP
// violation, for Fig. 3-style display. Returns ok=false when the trace is
// clean.
func FirstViolatedRegion(t *trace.Trace) (region, instance int32, ok bool) {
	// group POMP events per (region, instance) and reuse the census on a
	// filtered single-instance trace
	type key struct{ r, i int32 }
	seen := map[key]bool{}
	var order []key
	for _, p := range t.Procs {
		for _, ev := range p.Events {
			switch ev.Kind {
			case trace.Fork, trace.Join, trace.Enter, trace.Exit, trace.BarrierEnter, trace.BarrierExit:
				k := key{ev.Region, ev.Instance}
				if !seen[k] {
					seen[k] = true
					order = append(order, k)
				}
			}
		}
	}
	for _, k := range order {
		sub := &trace.Trace{Regions: t.Regions, Procs: make([]trace.Proc, len(t.Procs))}
		for i, p := range t.Procs {
			sub.Procs[i] = trace.Proc{Rank: p.Rank, Core: p.Core, Clock: p.Clock}
			for _, ev := range p.Events {
				if ev.Region == k.r && ev.Instance == k.i {
					sub.Procs[i].Events = append(sub.Procs[i].Events, ev)
				}
			}
		}
		c, err := analysis.POMPCensusOf(sub)
		if err != nil {
			continue
		}
		if c.Any > 0 {
			return k.r, k.i, true
		}
	}
	return 0, 0, false
}

// MessageTimeline renders a VAMPIR-style per-rank time-line of a
// message-passing trace segment (true-time window), drawing each message
// as S/R endpoints. Messages whose *recorded timestamps* are reversed
// (received before sent — the arrows "pointing backward in time-line
// views" of Section III) are marked with '!' at the receive. The x axis is
// recorded time, so backward arrows appear exactly as a trace visualizer
// would show them.
func MessageTimeline(t *trace.Trace, from, to float64, width int) (string, error) {
	if width < 32 {
		width = 32
	}
	msgs, err := t.Messages()
	if err != nil {
		return "", err
	}
	type mark struct {
		col int
		c   byte
	}
	min, max := math.Inf(1), math.Inf(-1)
	type pick struct {
		m        trace.Message
		sT, rT   float64
		reversed bool
	}
	var picked []pick
	for _, m := range msgs {
		s := t.Procs[m.From].Events[m.FromIdx]
		r := t.Procs[m.To].Events[m.ToIdx]
		if s.True < from || s.True >= to || r.True < from || r.True >= to {
			continue
		}
		p := pick{m: m, sT: s.Time, rT: r.Time, reversed: r.Time < s.Time}
		picked = append(picked, p)
		for _, v := range [2]float64{p.sT, p.rT} {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
	}
	if len(picked) == 0 {
		return "", fmt.Errorf("render: no complete messages in window [%v, %v)", from, to)
	}
	if max <= min {
		max = min + 1e-9
	}
	col := func(tt float64) int {
		c := int((tt - min) / (max - min) * float64(width-1))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	rows := make(map[int][]mark)
	reversedCount := 0
	for _, p := range picked {
		rows[p.m.From] = append(rows[p.m.From], mark{col(p.sT), 'S'})
		rc := byte('R')
		if p.reversed {
			rc = '!'
			reversedCount++
		}
		rows[p.m.To] = append(rows[p.m.To], mark{col(p.rT), rc})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "messages in [%.6f s, %.6f s) by recorded time — S send, R receive, ! receive timestamped before its send (%d reversed)\n",
		from, to, reversedCount)
	for rank := range t.Procs {
		marks, ok := rows[rank]
		if !ok {
			continue
		}
		line := []byte(strings.Repeat(".", width))
		for _, mk := range marks {
			line[mk.col] = mk.c
		}
		fmt.Fprintf(&b, "rank %3d |%s|\n", rank, line)
	}
	return b.String(), nil
}

// Bars renders a horizontal bar chart of labeled percentages — the shape
// of the paper's Fig. 7 and Fig. 8 bar groups.
func Bars(title string, labels []string, values []float64, width int) string {
	if width < 10 {
		width = 10
	}
	maxVal := 0.0
	for _, v := range values {
		if v > maxVal {
			maxVal = v
		}
	}
	if maxVal == 0 {
		maxVal = 1
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	var b strings.Builder
	b.WriteString(title)
	b.WriteByte('\n')
	for i, v := range values {
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		n := int(v / maxVal * float64(width))
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(&b, "  %-*s |%s%s %6.2f\n", labelW, label,
			strings.Repeat("#", n), strings.Repeat(" ", width-n), v)
	}
	return b.String()
}
