// Package a exercises the seedsrc analyzer: ambient math/rand draws,
// generator construction outside the choke point, wall-clock seeds
// (positive), xrand-shaped seeding (negative), and a directive case.
package a

import (
	"math/rand"
	"time"
)

// globalDraws use the process-global stream: consumption order depends
// on goroutine scheduling.
func globalDraws(n int) int {
	rand.Shuffle(n, func(i, j int) {}) // want `math/rand.Shuffle draws from the ambient global stream`
	return rand.Intn(n)                // want `math/rand.Intn draws from the ambient global stream`
}

// construct builds a generator outside internal/xrand.
func construct(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // want `rand.New outside internal/xrand` `rand.NewSource outside internal/xrand`
}

// wallClockSeed derives a seed from the host clock: the run becomes a
// function of when it ran.
func wallClockSeed() int64 {
	return deriveSeed(time.Now().UnixNano()) // want `deriveSeed seeded from the wall clock`
}

func deriveSeed(base int64) int64 { return base * 0x9e3779b9 }

// --- negatives ---

// configSeed derives per-task seeds from configuration, the xrand.SeedAt
// way: reproducible and order-independent.
func configSeed(base uint64, i uint64) uint64 {
	return seedAt(base, i)
}

func seedAt(base, i uint64) uint64 {
	state := base + i*0x9e3779b97f4a7c15
	state ^= state >> 30
	return state
}

// hostTiming may read the wall clock for benchmarking (wallclock exempts
// cmd/; seedsrc never minds time.Now outside seeding positions).
func hostTiming() time.Time {
	return time.Now()
}

// --- directive-suppressed ---

// justifiedEntropy shows the escape hatch; the comment must say where
// reproducibility comes from (here: the seed is logged so the run can be
// replayed by passing it back in).
func justifiedEntropy() int64 {
	return deriveSeed(time.Now().UnixNano()) //tsync:seeded — fallback when -seed is absent; the chosen seed is printed so the run is replayable by rerunning with -seed
}
