package stream

// White-box tests for the engine's tunables and slab plumbing: option
// normalization must be the single clamping point, and the slab pool
// must recycle without per-event (or per-slab) allocations.

import (
	"testing"

	"tsync/internal/trace"
)

func TestOptionsNormalize(t *testing.T) {
	cases := []struct {
		name string
		in   Options
		want Options
	}{
		{"zero", Options{}, Options{Window: DefaultWindow, Workers: 1, Batch: DefaultBatch}},
		{"negative", Options{Window: -5, Workers: -2, Batch: -1}, Options{Window: DefaultWindow, Workers: 1, Batch: DefaultBatch}},
		{"kept", Options{Window: 7, Workers: 3, Batch: 9, Policy: PolicyError},
			Options{Window: 7, Workers: 3, Batch: 9, Policy: PolicyError}},
		{"worker-floor", Options{Window: 1, Workers: 0, Batch: 1}, Options{Window: 1, Workers: 1, Batch: 1}},
	}
	for _, tc := range cases {
		if got := tc.in.Normalize(); got != tc.want {
			t.Errorf("%s: Normalize(%+v) = %+v, want %+v", tc.name, tc.in, got, tc.want)
		}
	}
}

// TestSlabRecycleAllocs pins the steady-state slab cycle — get, fill to
// capacity, put — to zero allocations once the pool is warm.
func TestSlabRecycleAllocs(t *testing.T) {
	pool := newSlabPool(64)
	warm := pool.get()
	pool.put(warm)
	ev := trace.Event{Kind: trace.Send, Time: 1, True: 2}
	if avg := testing.AllocsPerRun(1000, func() {
		s := pool.get()
		for len(s.evs) < cap(s.evs) {
			s.evs = append(s.evs, ev)
		}
		pool.put(s)
	}); avg > 0.02 {
		// sync.Pool may drop items across GC cycles; anything beyond
		// that noise means the cycle itself allocates.
		t.Errorf("slab recycle allocates %.3f per cycle, want ~0", avg)
	}
}
