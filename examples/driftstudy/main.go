// Driftstudy reproduces the heart of the paper's Section IV in one
// program: how far do clocks drift apart under each timer technology, and
// how much does linear offset interpolation help? It runs the Fig. 4
// (alignment only) and Fig. 5 (interpolation) panels and prints compact
// ASCII plots with the ±l_min/2 accuracy bound.
//
// Run with: go run ./examples/driftstudy
package main

import (
	"fmt"
	"log"

	"tsync"
	"tsync/internal/experiments"
	"tsync/internal/render"
)

func main() {
	const seed = 42

	fmt.Println("=== Fig. 4: offset alignment only — drift runs free ===")
	for _, panel := range []string{"a", "b", "c"} {
		res, err := tsync.Fig4(panel, seed)
		if err != nil {
			log.Fatal(err)
		}
		cfg, _ := experiments.Fig4Config(panel, seed)
		title := fmt.Sprintf("Fig. 4%s: %v over %.0f s", panel, cfg.Timer, cfg.Duration)
		fmt.Print(render.SeriesPlot(res.Series, 76, 12, title))
		describe(res)
	}

	fmt.Println("=== Fig. 5: linear offset interpolation — better, but not enough ===")
	for _, panel := range []string{"a", "b", "c"} {
		res, err := tsync.Fig5(panel, seed)
		if err != nil {
			log.Fatal(err)
		}
		cfg, _ := experiments.Fig5Config(panel, seed)
		title := fmt.Sprintf("Fig. 5%s: %v on %s", panel, cfg.Timer, cfg.Machine.Name)
		fmt.Print(render.SeriesPlot(res.Series, 76, 12, title, res.HalfLatency, -res.HalfLatency))
		describe(res)
	}

	fmt.Println("=== Fig. 6: even short runs can exceed the bound ===")
	res, err := tsync.Fig6(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(render.SeriesPlot(res.Series, 76, 12, "Fig. 6: Xeon TSC, 300 s, interpolated", res.HalfLatency, -res.HalfLatency))
	describe(res)
}

func describe(res *experiments.ClockStudyResult) {
	fmt.Printf("max |deviation| %.2f µs vs half-latency bound %.2f µs",
		res.Series.MaxAbsDeviation()*1e6, res.HalfLatency*1e6)
	if res.Exceeded {
		fmt.Printf(" — exceeded from t=%.0f s\n\n", res.FirstExceed)
	} else {
		fmt.Printf(" — within bound for this seed\n\n")
	}
}
