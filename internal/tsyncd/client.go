package tsyncd

// The client side of the protocol: dial, hello, upload, collect. A
// failed attempt retries under seeded exponential backoff (the jitter
// stream comes from internal/xrand via the caller's seed, never the
// wall clock), so a client's retry schedule is reproducible in tests.
// Transient outcomes — dial errors, dead connections, busy and
// queue-timeout rejections — retry; classified session errors and
// checksum mismatches are final.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"time"

	"tsync/internal/backoff"
)

// uploadChunk is the client's DATA frame body size.
const uploadChunk = 256 << 10

// ErrChecksum reports that the corrected trace bytes received differ
// from the checksum the server computed while writing them — a
// transport-level corruption the protocol's framing failed to catch.
var ErrChecksum = errors.New("tsyncd: received trace does not match the server checksum")

// ClientConfig tunes a Client. Zero values select the defaults noted.
type ClientConfig struct {
	// Addr is the server's TCP address (host:port).
	Addr string
	// Attempts bounds the total session tries, first included;
	// default 5.
	Attempts int
	// Backoff shapes the inter-attempt delays; the zero value selects
	// backoff.Default().
	Backoff backoff.Policy
	// Seed seeds the backoff jitter stream.
	Seed uint64
	// Timeout bounds each frame read or write on the wire; default 30s.
	Timeout time.Duration
	// Dial overrides the transport; tests inject loopback pipes and
	// fault-wrapped connections here. Nil dials Addr over TCP.
	Dial func(ctx context.Context) (net.Conn, error)
	// Sleep overrides the inter-attempt wait; tests substitute a
	// recorder. Nil waits in real time (backoff.Sleep).
	Sleep backoff.SleepFunc
}

// Client runs sessions against one server.
type Client struct {
	cfg ClientConfig
}

// NewClient returns a client over cfg (zero fields defaulted).
func NewClient(cfg ClientConfig) *Client {
	if cfg.Attempts <= 0 {
		cfg.Attempts = 5
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.Backoff == (backoff.Policy{}) {
		cfg.Backoff = backoff.Default()
	}
	return &Client{cfg: cfg}
}

func (c *Client) dial(ctx context.Context) (net.Conn, error) {
	if c.cfg.Dial != nil {
		return c.cfg.Dial(ctx)
	}
	var d net.Dialer
	return d.DialContext(ctx, "tcp", c.cfg.Addr)
}

// Sync runs one correction session: tr's bytes stream to the server
// under h's configuration, and the outcome comes back as a Done. When
// h.WantTrace is set and out is non-nil, the corrected trace is
// checksum-verified first and then copied to out — exactly once, even
// across retries. tr must support seeking so a retry can replay the
// upload from the start.
func (c *Client) Sync(ctx context.Context, h Hello, tr io.ReadSeeker, out io.Writer) (*Done, error) {
	b := backoff.New(c.cfg.Backoff, c.cfg.Seed)
	var done *Done
	err := backoff.Retry(ctx, b, c.cfg.Attempts, c.cfg.Sleep, permanentOutcome, func() error {
		if _, err := tr.Seek(0, io.SeekStart); err != nil {
			return &Error{Code: CodeInternal, Msg: err.Error()} // unseekable input: no retry can help
		}
		d, err := c.attempt(ctx, h, tr, out)
		done = d
		return err
	})
	if err != nil {
		return nil, err
	}
	return done, nil
}

// permanentOutcome classifies which attempt failures retrying cannot
// fix: every protocol error except busy/queue-timeout, and a checksum
// mismatch (the session succeeded; rerunning it proves nothing).
// Everything else — dial failures, resets, timeouts — is transient.
func permanentOutcome(err error) bool {
	var perr *Error
	if errors.As(err, &perr) {
		return perr.Code != CodeBusy && perr.Code != CodeQueueTimeout
	}
	return errors.Is(err, ErrChecksum)
}

// attempt runs one full session on a fresh connection.
func (c *Client) attempt(ctx context.Context, h Hello, tr io.Reader, out io.Writer) (*Done, error) {
	conn, err := c.dial(ctx)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	br := bufio.NewReader(conn)

	armWrite(conn, c.cfg.Timeout)
	if err := writeJSONFrame(conn, fHello, h); err != nil {
		return nil, err
	}
	armRead(conn, c.cfg.Timeout)
	typ, payload, err := readFrame(br, DefaultMaxFrame)
	if err != nil {
		return nil, err
	}
	switch typ {
	case fAccept:
	case fReject, fError:
		return nil, decodeError(payload)
	default:
		return nil, errf(CodeMalformed, "expected ACCEPT, got frame type %#x", typ)
	}

	// Upload. Server-side failures (quota, abort) arrive asynchronously;
	// a write error here just means the server closed on us, and the
	// receive loop below will surface whatever it managed to send.
	buf := make([]byte, uploadChunk)
	var uploadErr error
	for {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		n, rerr := tr.Read(buf)
		if n > 0 {
			armWrite(conn, c.cfg.Timeout)
			if werr := writeFrame(conn, fData, buf[:n]); werr != nil {
				uploadErr = werr
				break
			}
		}
		if rerr == io.EOF {
			armWrite(conn, c.cfg.Timeout)
			if werr := writeFrame(conn, fEOF, nil); werr != nil {
				uploadErr = werr
			}
			break
		}
		if rerr != nil {
			return nil, rerr
		}
	}

	// Collect. RESULT frames accumulate locally and reach out only
	// after the checksum verifies, so retries never emit partial bytes.
	hash := fnv.New64a()
	var body bytes.Buffer
	for {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		armRead(conn, c.cfg.Timeout)
		typ, payload, err := readFrame(br, DefaultMaxFrame)
		if err != nil {
			if uploadErr != nil {
				return nil, fmt.Errorf("upload failed (%v) and no server verdict followed: %w", uploadErr, err)
			}
			return nil, err
		}
		switch typ {
		case fResult:
			hash.Write(payload)
			if out != nil {
				body.Write(payload)
			}
		case fPong:
		case fDone:
			var d Done
			if err := json.Unmarshal(payload, &d); err != nil {
				return nil, errf(CodeMalformed, "undecodable DONE: %v", err)
			}
			if h.WantTrace {
				if got := fmt.Sprintf("%016x", hash.Sum64()); got != d.Checksum {
					return nil, fmt.Errorf("%w: got %s, server wrote %s", ErrChecksum, got, d.Checksum)
				}
			}
			if out != nil {
				if _, err := out.Write(body.Bytes()); err != nil {
					return nil, &Error{Code: CodeInternal, Msg: err.Error()} // local sink failure: final
				}
			}
			return &d, nil
		case fError:
			return nil, decodeError(payload)
		default:
			return nil, errf(CodeMalformed, "unexpected frame type %#x", typ)
		}
	}
}

// decodeError turns a REJECT/ERROR payload back into an *Error; an
// undecodable payload is itself a protocol violation.
func decodeError(payload []byte) error {
	var perr Error
	if err := json.Unmarshal(payload, &perr); err != nil || perr.Code == "" {
		return errf(CodeMalformed, "undecodable error frame %q", payload)
	}
	return &perr
}
