// Package a exercises the poolcheck analyzer: use-after-Put and
// double-Put on sync.Pool-backed slab pools (positive), the idiomatic
// get→fill→put loop and reassignment kills (negative), and a directive
// case.
package a

import "sync"

// slab is the unit of pooled work.
type slab struct {
	evs []int
}

// slabPool wraps sync.Pool the way the streaming layer does.
type slabPool struct {
	p sync.Pool
}

func (sp *slabPool) get() *slab  { return sp.p.Get().(*slab) }
func (sp *slabPool) put(s *slab) { sp.p.Put(s) }

// useAfterPut reads the slab after surrendering it.
func useAfterPut(sp *slabPool) int {
	s := sp.get()
	s.evs = append(s.evs, 1)
	sp.put(s)
	return len(s.evs) // want `use of "s" after it was returned to its pool`
}

// useAfterPutStdlib goes through sync.Pool directly.
func useAfterPutStdlib(p *sync.Pool) int {
	s := p.Get().(*slab)
	p.Put(s)
	return len(s.evs) // want `use of "s" after it was returned to its pool`
}

// useOnBranch: the use executes only on one path, but that path exists.
func useOnBranch(sp *slabPool, cond bool) int {
	s := sp.get()
	sp.put(s)
	if cond {
		return len(s.evs) // want `use of "s" after it was returned to its pool`
	}
	return 0
}

// writeAfterPut mutates the surrendered slab through a field.
func writeAfterPut(sp *slabPool) {
	s := sp.get()
	sp.put(s)
	s.evs = nil // want `use of "s" after it was returned to its pool`
}

// doublePut hands the same slab out twice.
func doublePut(sp *slabPool) {
	s := sp.get()
	sp.put(s)
	sp.put(s) // want `second Put of "s" reachable after an earlier Put`
}

// --- negatives ---

// pipelineLoop is the idiomatic shape: the back edge re-Gets before any
// use, so every path from put leads through a reassignment.
func pipelineLoop(sp *slabPool, fill func(*slab) bool) int {
	n := 0
	for {
		s := sp.get()
		if !fill(s) {
			sp.put(s)
			return n
		}
		n += len(s.evs)
		sp.put(s)
	}
}

// reassigned re-establishes ownership before the use.
func reassigned(sp *slabPool) int {
	s := sp.get()
	sp.put(s)
	s = sp.get()
	return len(s.evs)
}

// lastUseBeforePut is the normal drain-then-recycle order.
func lastUseBeforePut(sp *slabPool) int {
	s := sp.get()
	n := len(s.evs)
	sp.put(s)
	return n
}

// notAPool: Put on a non-pool type is someone else's protocol.
type queue struct{ items []*slab }

func (q *queue) Put(s *slab) { q.items = append(q.items, s) }

func queuePut(q *queue) int {
	s := &slab{}
	q.Put(s)
	return len(s.evs)
}

// --- directive-suppressed ---

// privatePool owns its pool exclusively (never shared with another
// goroutine), so reading after Put cannot race; the directive records
// that argument.
func privatePool(sp *slabPool) int {
	s := sp.get()
	sp.put(s)
	return len(s.evs) //tsync:reuse — sp is goroutine-local (constructed and drained in this call); no concurrent Get can observe s
}
