// Package main is the negative fixture for cmd/ front-ends: measuring
// the real host (the paper's Table 1 latency measurements) legitimately
// reads the wall clock.
package main

import "time"

func main() {
	start := time.Now()
	time.Sleep(time.Millisecond)
	_ = time.Since(start)
}
