package mpi

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"tsync/internal/clock"
	"tsync/internal/stats"
	"tsync/internal/topology"
	"tsync/internal/trace"
	"tsync/internal/xrand"
)

// newTestWorld builds an n-rank inter-node world on the Xeon cluster.
func newTestWorld(t testing.TB, n int, tracing bool) *World {
	t.Helper()
	m := topology.Xeon()
	pin, err := topology.InterNode(m, n)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(Config{Machine: m, Timer: clock.TSC, Pinning: pin, Seed: 7, Tracing: tracing})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestPingPongDelivery(t *testing.T) {
	w := newTestWorld(t, 2, false)
	var got Msg
	err := w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(1, 5, 64, "hello")
		} else {
			got = r.Recv(0, 5)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Source != 0 || got.Tag != 5 || got.Bytes != 64 || got.Data != "hello" {
		t.Fatalf("bad message: %+v", got)
	}
}

func TestMessageLatencyRealistic(t *testing.T) {
	w := newTestWorld(t, 2, false)
	var sendT, recvT float64
	err := w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			sendT = r.Now()
			r.Send(1, 0, 0, nil)
		} else {
			r.Recv(0, 0)
			recvT = r.Now()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := recvT - sendT
	// inter-node: >= 3.3 µs class l_min, and not absurdly long
	if elapsed < 3.0e-6 || elapsed > 100e-6 {
		t.Fatalf("one-way inter-node took %v s", elapsed)
	}
}

func TestTrueTimeClockCondition(t *testing.T) {
	// in true time the clock condition holds by construction; this pins
	// down that the simulator itself never cheats causality
	w := newTestWorld(t, 4, true)
	err := w.Run(func(r *Rank) {
		n := r.Size()
		for i := 0; i < 20; i++ {
			dst := (r.Rank() + 1) % n
			src := (r.Rank() - 1 + n) % n
			r.Send(dst, i, 8, nil)
			r.Recv(src, i)
			r.Compute(1e-6)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := w.Trace()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	msgs, err := tr.Messages()
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 4*20 {
		t.Fatalf("expected 80 messages, got %d", len(msgs))
	}
	for _, m := range msgs {
		s := tr.Procs[m.From].Events[m.FromIdx]
		rv := tr.Procs[m.To].Events[m.ToIdx]
		lmin := tr.MinLatencyBetween(m.From, m.To)
		if rv.True < s.True+lmin-1e-12 {
			t.Fatalf("true-time clock condition violated: recv %v < send %v + %v", rv.True, s.True, lmin)
		}
	}
}

func TestTracedSendHasEnterExit(t *testing.T) {
	w := newTestWorld(t, 2, true)
	err := w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(1, 0, 16, nil)
		} else {
			r.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := w.Trace()
	ev := tr.Procs[0].Events
	if len(ev) != 3 {
		t.Fatalf("sender recorded %d events, want Enter/Send/Exit", len(ev))
	}
	if ev[0].Kind != trace.Enter || ev[1].Kind != trace.Send || ev[2].Kind != trace.Exit {
		t.Fatalf("sender events %v %v %v", ev[0].Kind, ev[1].Kind, ev[2].Kind)
	}
	if tr.RegionName(ev[0].Region) != "MPI_Send" {
		t.Fatalf("region name %q", tr.RegionName(ev[0].Region))
	}
}

func TestUntracedRunRecordsNothing(t *testing.T) {
	w := newTestWorld(t, 2, false)
	err := w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(1, 0, 16, nil)
		} else {
			r.Recv(0, 0)
		}
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := w.Trace().EventCount(); n != 0 {
		t.Fatalf("untraced run recorded %d events", n)
	}
}

func TestSetTracingPartialWindow(t *testing.T) {
	w := newTestWorld(t, 2, false)
	err := w.Run(func(r *Rank) {
		exchange := func() {
			if r.Rank() == 0 {
				r.Send(1, 0, 8, nil)
				r.Recv(1, 1)
			} else {
				r.Recv(0, 0)
				r.Send(0, 1, 8, nil)
			}
		}
		exchange() // untraced
		r.Barrier()
		r.SetTracing(true)
		exchange() // traced
		r.Barrier()
		r.SetTracing(false)
		exchange() // untraced
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := w.Trace()
	msgs, err := tr.Messages()
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 2 {
		t.Fatalf("partial trace has %d messages, want 2", len(msgs))
	}
}

func TestAnySourceAnyTag(t *testing.T) {
	w := newTestWorld(t, 3, false)
	var sources []int
	err := w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			for i := 0; i < 2; i++ {
				m := r.Recv(AnySource, AnyTag)
				sources = append(sources, m.Source)
			}
		} else {
			r.Compute(float64(r.Rank()) * 1e-5)
			r.Send(0, r.Rank()*10, 4, nil)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// rank 1 computes less, so its message arrives first
	if !reflect.DeepEqual(sources, []int{1, 2}) {
		t.Fatalf("wildcard receive order %v", sources)
	}
}

func TestNonOvertakingUnderJitter(t *testing.T) {
	// a burst of same-channel messages must arrive in send order even
	// though individual latencies jitter
	w := newTestWorld(t, 2, false)
	var order []int
	err := w.Run(func(r *Rank) {
		const burst = 200
		if r.Rank() == 0 {
			for i := 0; i < burst; i++ {
				r.Send(1, 0, 8, i)
			}
		} else {
			for i := 0; i < burst; i++ {
				m := r.Recv(0, 0)
				order = append(order, m.Data.(int))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("message %d overtook: got payload %d", i, v)
		}
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	w := newTestWorld(t, 4, false)
	enter := make([]float64, 4)
	exit := make([]float64, 4)
	err := w.Run(func(r *Rank) {
		r.Compute(float64(r.Rank()) * 1e-4) // staggered arrival
		enter[r.Rank()] = r.Now()
		r.Barrier()
		exit[r.Rank()] = r.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	maxEnter := enter[0]
	for _, e := range enter {
		if e > maxEnter {
			maxEnter = e
		}
	}
	for i, x := range exit {
		if x < maxEnter {
			t.Fatalf("rank %d left the barrier at %v before the last rank entered at %v", i, x, maxEnter)
		}
	}
}

func TestAllreduceCombines(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 3, 5} { // powers of two and not
		w := newTestWorld(t, n, false)
		results := make([]int, n)
		err := w.Run(func(r *Rank) {
			v := r.Allreduce(8, r.Rank()+1, func(a, b any) any { return a.(int) + b.(int) })
			results[r.Rank()] = v.(int)
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want := n * (n + 1) / 2
		for i, v := range results {
			if n&(n-1) == 0 && v != want {
				t.Fatalf("n=%d rank %d: allreduce = %d, want %d", n, i, v, want)
			}
			if i == 0 && v != want {
				// non-power-of-two path: at least the root of the
				// reduce tree must have the exact sum broadcast back
				t.Fatalf("n=%d rank 0: allreduce = %d, want %d", n, v, want)
			}
		}
	}
}

func TestBcastDelivers(t *testing.T) {
	for _, n := range []int{2, 3, 4, 7, 8} {
		for root := 0; root < n; root += n/2 + 1 {
			w := newTestWorld(t, n, false)
			got := make([]any, n)
			err := w.Run(func(r *Rank) {
				var d any
				if r.Rank() == root {
					d = "payload"
				}
				got[r.Rank()] = r.Bcast(root, 32, d)
			})
			if err != nil {
				t.Fatalf("n=%d root=%d: %v", n, root, err)
			}
			for i, v := range got {
				if v != "payload" {
					t.Fatalf("n=%d root=%d rank %d got %v", n, root, i, v)
				}
			}
		}
	}
}

func TestReduceCombinesAtRoot(t *testing.T) {
	for _, n := range []int{2, 4, 5, 8} {
		w := newTestWorld(t, n, false)
		var rootVal int
		err := w.Run(func(r *Rank) {
			v := r.Reduce(0, 8, 1, func(a, b any) any { return a.(int) + b.(int) })
			if r.Rank() == 0 {
				rootVal = v.(int)
			}
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if rootVal != n {
			t.Fatalf("n=%d: reduce at root = %d, want %d", n, rootVal, n)
		}
	}
}

func TestGatherScatter(t *testing.T) {
	const n = 5
	w := newTestWorld(t, n, false)
	var gathered []any
	scattered := make([]any, n)
	err := w.Run(func(r *Rank) {
		g := r.Gather(2, 8, r.Rank()*r.Rank())
		if r.Rank() == 2 {
			gathered = g
		}
		var pieces []any
		if r.Rank() == 1 {
			pieces = []any{"p0", "p1", "p2", "p3", "p4"}
		}
		scattered[r.Rank()] = r.Scatter(1, 8, pieces)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range gathered {
		if v != i*i {
			t.Fatalf("gather[%d] = %v", i, v)
		}
	}
	for i, v := range scattered {
		if v != fmt.Sprintf("p%d", i) {
			t.Fatalf("scatter[%d] = %v", i, v)
		}
	}
}

func TestAllgatherAlltoallComplete(t *testing.T) {
	w := newTestWorld(t, 6, false)
	err := w.Run(func(r *Rank) {
		r.Allgather(128)
		r.Alltoall(64)
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectiveTraceMatched(t *testing.T) {
	w := newTestWorld(t, 4, true)
	err := w.Run(func(r *Rank) {
		r.Barrier()
		r.Allreduce(8, 0, nil)
		r.Bcast(1, 64, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := w.Trace()
	colls, err := tr.Collectives()
	if err != nil {
		t.Fatal(err)
	}
	if len(colls) != 3 {
		t.Fatalf("got %d collectives, want 3", len(colls))
	}
	ops := []trace.CollOp{trace.OpBarrier, trace.OpAllreduce, trace.OpBcast}
	for i, c := range colls {
		if c.Op != ops[i] {
			t.Fatalf("collective %d op %v, want %v", i, c.Op, ops[i])
		}
		if len(c.Begin) != 4 || len(c.End) != 4 {
			t.Fatalf("collective %d has %d/%d participants", i, len(c.Begin), len(c.End))
		}
	}
	// no stray Send/Recv events from internal collective traffic
	for _, p := range tr.Procs {
		for _, ev := range p.Events {
			if ev.Kind == trace.Send || ev.Kind == trace.Recv {
				t.Fatalf("internal collective traffic leaked into trace: %v", ev.Kind)
			}
		}
	}
}

func TestAllreduceLatencyTableII(t *testing.T) {
	// Table II: inter-node allreduce on 4 nodes ~12.86 µs, i.e. a few
	// times the point-to-point latency
	var acc stats.Online
	w := newTestWorld(t, 4, false)
	starts := make([]float64, 4)
	err := w.Run(func(r *Rank) {
		for i := 0; i < 200; i++ {
			r.Barrier()
			starts[r.Rank()] = r.Now()
			r.Allreduce(8, nil, nil)
			if r.Rank() == 0 {
				acc.Add(r.Now() - starts[0])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	mean := acc.Mean()
	if mean < 8e-6 || mean > 25e-6 {
		t.Fatalf("4-node allreduce mean %v s, want ~13 µs class", mean)
	}
}

func TestWtimeAdvancesAndCosts(t *testing.T) {
	w := newTestWorld(t, 1, false)
	err := w.Run(func(r *Rank) {
		t0 := r.Now()
		a := r.Wtime()
		b := r.Wtime()
		if b <= a {
			t.Errorf("Wtime not increasing: %v then %v", a, b)
		}
		if r.Now() == t0 {
			t.Errorf("Wtime consumed no simulated time")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicTraces(t *testing.T) {
	run := func() *trace.Trace {
		w := newTestWorld(t, 4, true)
		if err := w.Run(func(r *Rank) {
			for i := 0; i < 10; i++ {
				dst := (r.Rank() + 1) % r.Size()
				src := (r.Rank() - 1 + r.Size()) % r.Size()
				r.Send(dst, 0, 64, nil)
				r.Recv(src, 0)
				r.Allreduce(8, nil, nil)
			}
		}); err != nil {
			t.Fatal(err)
		}
		return w.Trace()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical configs produced different traces")
	}
}

func TestDeadlockReported(t *testing.T) {
	w := newTestWorld(t, 2, false)
	err := w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			r.Recv(1, 0) // never sent
		}
	})
	if err == nil {
		t.Fatalf("deadlocked job reported success")
	}
}

func TestSendToSelfPanics(t *testing.T) {
	w := newTestWorld(t, 2, false)
	defer func() {
		if recover() == nil {
			t.Fatalf("Send to self did not panic")
		}
	}()
	_ = w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(0, 0, 0, nil)
		}
	})
}

func TestTimestampsDriftApart(t *testing.T) {
	// the whole point: local timestamps of concurrent events on
	// different nodes disagree even though true times agree
	m := topology.Xeon()
	pin, _ := topology.InterNode(m, 2)
	w, err := NewWorld(Config{Machine: m, Timer: clock.TSC, Pinning: pin, Seed: 3, Tracing: true})
	if err != nil {
		t.Fatal(err)
	}
	var ts [2]float64
	if err := w.Run(func(r *Rank) {
		r.Compute(100) // let drift accumulate
		r.Barrier()
		ts[r.Rank()] = r.Wtime()
	}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(ts[0]-ts[1]) < 1e-6 {
		t.Fatalf("unaligned clocks agreed to %v s after 100 s; drift model inert", math.Abs(ts[0]-ts[1]))
	}
}

func TestConfigValidation(t *testing.T) {
	m := topology.Xeon()
	if _, err := NewWorld(Config{Machine: m, Timer: clock.TSC}); err == nil {
		t.Fatalf("empty pinning accepted")
	}
	bad := topology.Pinning{{Node: 99}}
	if _, err := NewWorld(Config{Machine: m, Timer: clock.TSC, Pinning: bad}); err == nil {
		t.Fatalf("invalid pinning accepted")
	}
}

func TestRunTwiceRejected(t *testing.T) {
	w := newTestWorld(t, 1, false)
	if err := w.Run(func(r *Rank) {}); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(func(r *Rank) {}); err == nil {
		t.Fatalf("second Run accepted")
	}
}

func BenchmarkPingPong(b *testing.B) {
	w := newTestWorld(b, 2, false)
	err := w.Run(func(r *Rank) {
		for i := 0; i < b.N; i++ {
			if r.Rank() == 0 {
				r.Send(1, 0, 8, nil)
				r.Recv(1, 1)
			} else {
				r.Recv(0, 0)
				r.Send(0, 1, 8, nil)
			}
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkBarrier32(b *testing.B) {
	m := topology.Xeon()
	pin, err := topology.Scheduled(m, 32, xrand.NewSource(9))
	if err != nil {
		b.Fatal(err)
	}
	w, err := NewWorld(Config{Machine: m, Timer: clock.TSC, Pinning: pin, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	err = w.Run(func(r *Rank) {
		for i := 0; i < b.N; i++ {
			r.Barrier()
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

func TestIsendIrecvWait(t *testing.T) {
	w := newTestWorld(t, 2, true)
	var got Msg
	err := w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			req := r.Isend(1, 3, 128, "async")
			if !req.Completed() {
				t.Errorf("eager Isend not complete")
			}
			r.Wait(req)
		} else {
			req := r.Irecv(0, 3)
			r.Compute(1e-5)
			got = r.Wait(req)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Data != "async" || got.Source != 0 {
		t.Fatalf("bad message %+v", got)
	}
	// the receive event must be recorded inside MPI_Wait
	tr := w.Trace()
	var sawRecv bool
	var inWait bool
	for _, ev := range tr.Procs[1].Events {
		switch ev.Kind {
		case trace.Enter:
			if tr.RegionName(ev.Region) == "MPI_Wait" {
				inWait = true
			}
		case trace.Exit:
			inWait = false
		case trace.Recv:
			if !inWait {
				t.Fatalf("Recv event recorded outside MPI_Wait")
			}
			sawRecv = true
		}
	}
	if !sawRecv {
		t.Fatalf("no Recv event recorded")
	}
}

func TestIrecvMatchOrder(t *testing.T) {
	// two posted receives with the same signature must complete in post
	// order even if the matching messages arrive later
	w := newTestWorld(t, 2, false)
	var first, second Msg
	err := w.Run(func(r *Rank) {
		if r.Rank() == 1 {
			a := r.Irecv(0, 0)
			b := r.Irecv(0, 0)
			first = r.Wait(a)
			second = r.Wait(b)
		} else {
			r.Compute(1e-4) // ensure receives are posted first
			r.Send(1, 0, 8, "one")
			r.Send(1, 0, 8, "two")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if first.Data != "one" || second.Data != "two" {
		t.Fatalf("posted receives matched out of order: %v, %v", first.Data, second.Data)
	}
}

func TestWaitallMixed(t *testing.T) {
	w := newTestWorld(t, 3, false)
	err := w.Run(func(r *Rank) {
		switch r.Rank() {
		case 0:
			a := r.Irecv(1, 1)
			b := r.Irecv(2, 2)
			c := r.Isend(1, 9, 8, nil)
			msgs := r.Waitall(a, b, c)
			if msgs[0].Source != 1 || msgs[1].Source != 2 {
				t.Errorf("waitall order wrong: %+v", msgs)
			}
		case 1:
			r.Send(0, 1, 8, nil)
			r.Recv(0, 9)
		case 2:
			r.Send(0, 2, 8, nil)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendrecvExchange(t *testing.T) {
	w := newTestWorld(t, 4, true)
	vals := make([]int, 4)
	err := w.Run(func(r *Rank) {
		n := r.Size()
		right := (r.Rank() + 1) % n
		left := (r.Rank() - 1 + n) % n
		m := r.Sendrecv(right, 0, 64, r.Rank(), left, 0)
		vals[r.Rank()] = m.Data.(int)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if want := (i - 1 + 4) % 4; v != want {
			t.Fatalf("rank %d received %d, want %d", i, v, want)
		}
	}
	msgs, err := w.Trace().Messages()
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 4 {
		t.Fatalf("traced %d messages, want 4", len(msgs))
	}
}

func TestScanPrefix(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 8} {
		w := newTestWorld(t, n, false)
		got := make([]int, n)
		err := w.Run(func(r *Rank) {
			v := r.Scan(8, r.Rank()+1, func(a, b any) any { return a.(int) + b.(int) })
			got[r.Rank()] = v.(int)
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i, v := range got {
			want := (i + 1) * (i + 2) / 2
			if v != want {
				t.Fatalf("n=%d rank %d: scan = %d, want %d", n, i, v, want)
			}
		}
	}
}

func TestIsendToSelfPanics(t *testing.T) {
	w := newTestWorld(t, 2, false)
	defer func() {
		if recover() == nil {
			t.Fatalf("Isend to self did not panic")
		}
	}()
	_ = w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			r.Isend(0, 0, 0, nil)
		}
	})
}

func TestRendezvousBlocksUntilReceiverArrives(t *testing.T) {
	// a large Send must not complete before the receiver reaches its
	// receive (the rendezvous protocol), while a small Send returns
	// immediately (eager)
	const large = 1 << 20
	w := newTestWorld(t, 2, false)
	var sendDone, recvPosted float64
	err := w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(1, 0, large, "bulk")
			sendDone = r.Now()
		} else {
			r.Compute(5e-3) // receiver arrives late
			recvPosted = r.Now()
			m := r.Recv(0, 0)
			if m.Data != "bulk" {
				t.Errorf("payload lost: %v", m.Data)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if sendDone < recvPosted {
		t.Fatalf("rendezvous Send completed at %v before the receive was posted at %v", sendDone, recvPosted)
	}

	// eager control: a small send completes long before the late receiver
	w2 := newTestWorld(t, 2, false)
	var smallDone float64
	err = w2.Run(func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(1, 0, 64, nil)
			smallDone = r.Now()
		} else {
			r.Compute(5e-3)
			r.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if smallDone > 1e-3 {
		t.Fatalf("eager Send took %v s, appears to have blocked", smallDone)
	}
}

func TestRendezvousReceiverFirst(t *testing.T) {
	// the receive is already posted when the RTS arrives: deliver() must
	// answer the CTS from scheduler context without deadlock
	const large = 1 << 20
	w := newTestWorld(t, 2, false)
	err := w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			r.Compute(5e-3) // sender arrives late
			r.Send(1, 0, large, "bulk")
		} else {
			m := r.Recv(0, 0)
			if m.Data != "bulk" {
				t.Errorf("payload lost: %v", m.Data)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRendezvousWithIrecvAndWildcard(t *testing.T) {
	const large = 1 << 20
	w := newTestWorld(t, 3, false)
	err := w.Run(func(r *Rank) {
		switch r.Rank() {
		case 0:
			q := r.Irecv(AnySource, AnyTag)
			r.Compute(2e-3)
			m := r.Wait(q)
			if m.Bytes != large {
				t.Errorf("got %d bytes", m.Bytes)
			}
			// second large message from the other sender, blocking recv
			m2 := r.Recv(AnySource, AnyTag)
			if m2.Bytes != large {
				t.Errorf("second transfer: %d bytes", m2.Bytes)
			}
		case 1:
			r.Send(0, 5, large, nil)
		case 2:
			r.Compute(4e-3)
			r.Send(0, 6, large, nil)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRendezvousTracedTrace(t *testing.T) {
	const large = 1 << 20
	w := newTestWorld(t, 2, true)
	err := w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(1, 0, large, nil)
		} else {
			r.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := w.Trace()
	msgs, err := tr.Messages()
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 {
		t.Fatalf("%d messages traced (control traffic leaked?)", len(msgs))
	}
	// in true time the receive still follows the send record
	s := tr.Procs[0].Events[msgs[0].FromIdx]
	rv := tr.Procs[1].Events[msgs[0].ToIdx]
	if rv.True < s.True {
		t.Fatalf("acausal rendezvous trace")
	}
}

func TestTrafficStats(t *testing.T) {
	w := newTestWorld(t, 2, true)
	err := w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(1, 0, 100, nil)
			r.Send(1, 1, 50, nil)
		} else {
			r.Recv(0, 0)
			r.Recv(0, 1)
		}
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	st := w.Traffic()
	if st[0].SendCount != 2 || st[0].BytesSent != 150 || st[0].CollectiveOps != 1 {
		t.Fatalf("rank 0 stats %+v", st[0])
	}
	if st[1].RecvCount != 2 || st[1].SendCount != 0 {
		t.Fatalf("rank 1 stats %+v", st[1])
	}
}

func TestProbe(t *testing.T) {
	w := newTestWorld(t, 2, false)
	err := w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(1, 3, 8, nil)
		} else {
			if r.Probe(0, 3) {
				t.Errorf("Probe true before delivery")
			}
			r.Compute(1e-3)
			if !r.Probe(0, 3) {
				t.Errorf("Probe false after delivery")
			}
			if !r.Probe(AnySource, AnyTag) {
				t.Errorf("wildcard Probe false")
			}
			if r.Probe(0, 99) {
				t.Errorf("Probe matched wrong tag")
			}
			r.Recv(0, 3)
			if r.Probe(0, 3) {
				t.Errorf("Probe true after consumption")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunEachMPMD(t *testing.T) {
	w := newTestWorld(t, 2, false)
	var got string
	err := w.RunEach([]func(*Rank){
		func(r *Rank) { r.Send(1, 0, 8, "mpmd") },
		func(r *Rank) { got = r.Recv(0, 0).Data.(string) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != "mpmd" {
		t.Fatalf("got %q", got)
	}
	if err := w.RunEach(nil); err == nil {
		t.Fatalf("reuse/size mismatch accepted")
	}
}
