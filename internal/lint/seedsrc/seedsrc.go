// Package seedsrc defines an analyzer that keeps every stochastic path
// splitmix64-reproducible.
//
// The repository's randomness flows through internal/xrand: splitmix64
// seed derivation (xrand.SeedAt gives every task an order-independent
// seed) and xoshiro256** streams that are stable across Go releases and
// splittable per component. Any other randomness source breaks one of
// those properties: math/rand's convenience functions draw from a
// process-global stream whose consumption order depends on scheduling;
// rand.New scatters generator construction so adding a consumer perturbs
// its neighbours' streams; and a seed derived from the wall clock makes
// the run a function of when it ran, which no replay can reproduce.
//
// The wallclock analyzer already bans math/rand imports from simulation
// code but deliberately exempts cmd/ front-ends; seedsrc closes that
// gap — a cmd/ tool may measure host wall time, but its stochastic
// choices must still replay. The analyzer reports, everywhere except
// internal/xrand itself:
//
//   - any use of a math/rand or math/rand/v2 function (Intn, Shuffle,
//     Perm, Seed, ... draw from the ambient global stream; New, NewSource,
//     NewPCG, NewChaCha8 construct generators outside the choke point);
//   - any call whose name looks seed-like (Seed, NewSource, SeedAt, ...)
//     with an argument derived from the wall clock (time.Now and the
//     Unix* conversions).
//
// There is almost never a legitimate suppression; the escape hatch for a
// justified exception is a "tsync:seeded" comment on the flagged line
// naming where the seed's reproducibility comes from.
package seedsrc

import (
	"go/ast"
	"go/types"
	"regexp"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"tsync/internal/lint"
)

const doc = `forbid math/rand and time-derived seeds; randomness flows through internal/xrand

math/rand's global stream and ad-hoc rand.New generators are not
order-independent or release-stable; wall-clock seeds make runs
unreplayable. Derive seeds with xrand.SeedAt and draw from xrand streams.`

// Analyzer is the seedsrc analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "seedsrc",
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// directive is the per-line suppression marker.
const directive = "tsync:seeded"

// constructors are the math/rand entry points that build generators or
// sources rather than drawing from the global stream.
var constructors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true, "NewZipf": true,
}

// seedishRE matches call names that install or derive a seed.
var seedishRE = regexp.MustCompile(`(?i)(seed|newsource|rng)`)

func run(pass *analysis.Pass) (any, error) {
	if lint.PathHasSuffix(pass.Pkg.Path(), "internal/xrand") {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.SelectorExpr)(nil), (*ast.CallExpr)(nil)}, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			checkRandUse(pass, n)
		case *ast.CallExpr:
			checkTimeSeed(pass, n)
		}
	})
	return nil, nil
}

// checkRandUse reports references to math/rand package-level functions.
func checkRandUse(pass *analysis.Pass, sel *ast.SelectorExpr) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return
	}
	path := pn.Imported().Path()
	if path != "math/rand" && path != "math/rand/v2" {
		return
	}
	if _, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); !ok {
		return
	}
	if lint.HasLineDirective(pass, sel.Pos(), directive) {
		return
	}
	if constructors[sel.Sel.Name] {
		pass.Reportf(sel.Pos(), "rand.%s outside internal/xrand: construct generators through tsync/internal/xrand (NewSource/Sub) so streams stay splittable and release-stable", sel.Sel.Name)
		return
	}
	pass.Reportf(sel.Pos(), "%s.%s draws from the ambient global stream: its consumption order depends on scheduling, so runs are not replayable; use a tsync/internal/xrand stream", path, sel.Sel.Name)
}

// checkTimeSeed reports seed-like calls fed from the wall clock.
func checkTimeSeed(pass *analysis.Pass, call *ast.CallExpr) {
	name := calleeName(call)
	if name == "" || !seedishRE.MatchString(name) {
		return
	}
	for _, arg := range call.Args {
		if !mentionsWallClock(pass, arg) {
			continue
		}
		if lint.HasLineDirective(pass, call.Pos(), directive) {
			return
		}
		pass.Reportf(call.Pos(), "%s seeded from the wall clock: the run becomes a function of when it ran and no replay can reproduce it; derive the seed from configuration (xrand.SeedAt)", name)
		return
	}
}

// calleeName extracts the called function's name (the final selector
// component or the identifier).
func calleeName(call *ast.CallExpr) string {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

// mentionsWallClock reports whether e's subtree calls time.Now.
func mentionsWallClock(pass *analysis.Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return !found
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return !found
		}
		if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok &&
			pn.Imported().Path() == "time" && sel.Sel.Name == "Now" {
			found = true
		}
		return !found
	})
	return found
}
