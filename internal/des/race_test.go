package des

// Race regression tests for the engine's goroutine handoff. The engine
// runs exactly one goroutine at a time — scheduler and processes hand
// control over through p.resume and e.yield — and the writes to e.failure
// and p.done in the Spawn goroutine (annotated tsync:locked) are ordered
// by the e.yield send that follows them. These tests replay that protocol
// with many processes and with panic propagation so `make race` verifies
// the happens-before argument dynamically.

import (
	"strings"
	"testing"
)

// TestManyProcessesHandoffRace interleaves 64 processes whose sleeps
// collide on the same instants, maximising handoffs per simulated second.
func TestManyProcessesHandoffRace(t *testing.T) {
	const n = 64
	e := New()
	finished := make([]float64, n)
	for i := 0; i < n; i++ {
		i := i
		e.Spawn("worker", float64(i%4)*0.25, func(p *Proc) {
			for step := 0; step < 50; step++ {
				p.Sleep(float64((i+step)%8) * 0.125)
			}
			finished[i] = p.Now()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, f := range finished {
		if f <= 0 {
			t.Fatalf("process %d never finished (finished at %v)", i, f)
		}
	}
	if e.Processed() == 0 {
		t.Fatal("no events processed")
	}
}

// TestPanicPropagationRace drives the failure path: the panicking
// process's goroutine writes e.failure, the scheduler goroutine reads it
// after the yield handoff and re-panics.
func TestPanicPropagationRace(t *testing.T) {
	e := New()
	for i := 0; i < 8; i++ {
		e.Spawn("calm", 0, func(p *Proc) { p.Sleep(1) })
	}
	e.Spawn("bomb", 0.5, func(p *Proc) {
		p.Sleep(0.1)
		panic("boom")
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("engine did not propagate the process panic")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "boom") {
			t.Fatalf("unexpected panic payload: %v", r)
		}
	}()
	_ = e.Run()
}
