// Package mpi is the message-passing substrate: a simulated MPI library
// running on the discrete-event engine. Rank programs are ordinary Go
// functions using a blocking API (Send/Recv/collectives); the simulator
// provides realistic timing from the interconnect model and timestamps from
// the simulated processor clocks, producing exactly the kind of event trace
// a PMPI-interposition tracing library records (Section III of the paper).
//
// Collective operations are implemented as rounds of internal (untraced)
// point-to-point messages using textbook algorithms (binomial trees,
// dissemination), so their latencies and happened-before structure emerge
// from the network model rather than being postulated — the trace records
// only CollBegin/CollEnd, as real tracers do.
package mpi

import (
	"fmt"

	"tsync/internal/clock"
	"tsync/internal/des"
	"tsync/internal/netmodel"
	"tsync/internal/topology"
	"tsync/internal/trace"
)

// Config describes a simulated MPI job.
type Config struct {
	Machine topology.Machine
	Timer   clock.Kind
	// Pinning maps ranks to cores; its length is the job size.
	Pinning topology.Pinning
	Seed    uint64
	// Tracing sets the initial tracing state of every rank (ranks can
	// toggle it at runtime, e.g. for partial traces as in the POP
	// experiment of Fig. 7).
	Tracing bool
	// Net overrides the interconnect model; nil selects the machine
	// family's calibrated model.
	Net *netmodel.Model
}

// World is one simulated MPI job.
type World struct {
	cfg     Config
	eng     *des.Engine
	cluster *topology.Cluster
	net     *netmodel.Model
	ranks   []*Rank
	tr      *trace.Trace
	// chanLast tracks the last delivery time per directed rank pair to
	// enforce MPI's non-overtaking rule under latency jitter.
	chanLast map[[2]int]float64
	ran      bool
}

// NewWorld builds the job: cluster clocks, network, and one Rank per
// pinning entry.
func NewWorld(cfg Config) (*World, error) {
	if len(cfg.Pinning) == 0 {
		return nil, fmt.Errorf("mpi: empty pinning")
	}
	if err := cfg.Pinning.Validate(cfg.Machine); err != nil {
		return nil, err
	}
	preset := clock.PresetFor(cfg.Timer, cfg.Machine.Family)
	cluster, err := topology.NewCluster(cfg.Machine, preset, cfg.Seed)
	if err != nil {
		return nil, err
	}
	net := cfg.Net
	if net == nil {
		net = netmodel.ForMachine(cfg.Machine.Family, cfg.Seed^0x9e3779b97f4a7c15)
	}
	w := &World{
		cfg:      cfg,
		eng:      des.New(),
		cluster:  cluster,
		net:      net,
		chanLast: make(map[[2]int]float64),
		tr: &trace.Trace{
			Machine: cfg.Machine.Name,
			Timer:   cfg.Timer.String(),
		},
	}
	// l_min table for the clock condition, from the 0-byte network minima
	probe := func(a, b topology.CoreID) float64 {
		l, err := net.MinLatency(a, b, 0)
		if err != nil {
			return 0
		}
		return l
	}
	w.tr.MinLatency[topology.SameChip] = probe(topology.CoreID{Core: 0}, topology.CoreID{Core: 1})
	if cfg.Machine.ChipsPerNode > 1 {
		w.tr.MinLatency[topology.SameNode] = probe(topology.CoreID{Chip: 0}, topology.CoreID{Chip: 1})
	} else {
		w.tr.MinLatency[topology.SameNode] = w.tr.MinLatency[topology.SameChip]
	}
	if cfg.Machine.Nodes > 1 {
		w.tr.MinLatency[topology.CrossNode] = probe(topology.CoreID{Node: 0}, topology.CoreID{Node: 1})
	} else {
		w.tr.MinLatency[topology.CrossNode] = w.tr.MinLatency[topology.SameNode]
	}
	for rank, core := range cfg.Pinning {
		clk, err := cluster.Clock(core)
		if err != nil {
			return nil, err
		}
		w.ranks = append(w.ranks, &Rank{
			world:    w,
			rank:     rank,
			core:     core,
			clk:      clk,
			tracing:  cfg.Tracing,
			mailbox:  make(map[chanKey][]*inflight),
			collSeq:  make(map[int32]int32),
			splitSeq: make(map[int32]int32),
		})
	}
	return w, nil
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// Engine exposes the event engine (for tests and advanced drivers).
func (w *World) Engine() *des.Engine { return w.eng }

// Cluster exposes the clock fabric.
func (w *World) Cluster() *topology.Cluster { return w.cluster }

// Net exposes the interconnect model.
func (w *World) Net() *netmodel.Model { return w.net }

// Run executes program on every rank (SPMD) and drives the simulation to
// completion. It can be called once per World.
func (w *World) Run(program func(*Rank)) error {
	if w.ran {
		return fmt.Errorf("mpi: World.Run called twice")
	}
	w.ran = true
	for _, r := range w.ranks {
		r := r
		r.proc = w.eng.Spawn(fmt.Sprintf("rank%d", r.rank), 0, func(p *des.Proc) {
			program(r)
		})
	}
	return w.eng.Run()
}

// Trace assembles and returns the recorded event trace. Call after Run.
func (w *World) Trace() *trace.Trace {
	w.tr.Procs = w.tr.Procs[:0]
	for _, r := range w.ranks {
		w.tr.Procs = append(w.tr.Procs, trace.Proc{
			Rank:   r.rank,
			Core:   r.core,
			Clock:  r.clk.Name(),
			Events: r.events,
		})
	}
	return w.tr
}

// sendControl dispatches a zero-byte control message (rendezvous CTS)
// from scheduler context — no sender-side overhead, just network latency.
func (w *World) sendControl(from, to, tag int, comm int32) {
	lat, err := w.net.Latency(w.ranks[from].core, w.ranks[to].core, 0)
	if err != nil {
		panic(fmt.Sprintf("mpi: control message: %v", err))
	}
	arrival := w.nonOvertaking(from, to, w.eng.Now()+lat)
	target := w.ranks[to]
	w.eng.Schedule(arrival, func() {
		target.deliver(Msg{Source: from, Tag: tag}, comm, arrival)
	})
}

// nonOvertaking clamps a candidate arrival time so messages on the same
// directed rank pair arrive in send order.
func (w *World) nonOvertaking(from, to int, arrival float64) float64 {
	k := [2]int{from, to}
	if last, ok := w.chanLast[k]; ok && arrival < last {
		arrival = last
	}
	w.chanLast[k] = arrival
	return arrival
}

// TrafficStats summarizes a rank's communication volume after Run.
type TrafficStats struct {
	Rank          int
	SendCount     int
	RecvCount     int
	BytesSent     int64
	CollectiveOps int
}

// Traffic returns per-rank communication statistics derived from the
// recorded trace events (traced operations only).
func (w *World) Traffic() []TrafficStats {
	out := make([]TrafficStats, len(w.ranks))
	for i, r := range w.ranks {
		st := TrafficStats{Rank: i}
		for _, ev := range r.events {
			switch ev.Kind {
			case trace.Send:
				st.SendCount++
				st.BytesSent += int64(ev.Bytes)
			case trace.Recv:
				st.RecvCount++
			case trace.CollBegin:
				st.CollectiveOps++
			}
		}
		out[i] = st
	}
	return out
}

// RunEach executes a distinct program per rank (MPMD), unlike Run's SPMD
// model. programs must have exactly one entry per rank.
func (w *World) RunEach(programs []func(*Rank)) error {
	if len(programs) != len(w.ranks) {
		return fmt.Errorf("mpi: %d programs for %d ranks", len(programs), len(w.ranks))
	}
	if w.ran {
		return fmt.Errorf("mpi: World.Run called twice")
	}
	w.ran = true
	for i, r := range w.ranks {
		r := r
		prog := programs[i]
		r.proc = w.eng.Spawn(fmt.Sprintf("rank%d", r.rank), 0, func(p *des.Proc) {
			prog(r)
		})
	}
	return w.eng.Run()
}
