package stream_test

// Fingerprint-stage differential tests: the per-rank drift report must
// be bit-identical across workers and batch sizes (the diff-harness
// pattern), identical between the standalone rank-major pass and the
// pipeline's teed first walk, and enabling the stage must not move a
// single bit of any other pipeline output.

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"tsync/internal/faultinject"
	"tsync/internal/fingerprint"
	"tsync/internal/stream"
	"tsync/internal/xrand"
)

const fpSeed = 0xf1b9e2

// fpSpec is a distorted workload exercising all three fault kinds.
func fpSpec(seed uint64) stream.SynthSpec {
	return stream.SynthSpec{
		Ranks: 4, Steps: 800, CollEvery: 16, Seed: seed,
		DistortClock: faultinject.Distort([]faultinject.ClockFault{
			{Rank: 1, Kind: faultinject.Step, At: 0.25, Delta: 1e-3},
			{Rank: 2, Kind: faultinject.FreqJump, At: 0.4, Delta: 8e-4},
			{Rank: 3, Kind: faultinject.Reset, At: 0.6, Delta: 0.1},
		}),
	}
}

// TestFingerprintDeterminism: workers {1,4} × batch {1,4096} must all
// produce the reference report bit for bit, with identical output
// bytes, and the standalone Fingerprint pass must agree with the
// pipeline stage.
func TestFingerprintDeterminism(t *testing.T) {
	path, init, fin := synthFile(t, fpSpec(xrand.SeedAt(fpSeed, 1)))
	fpo := fingerprint.Options{}

	src := openSource(t, path)
	refRep, _, err := stream.Fingerprint(src, stream.Options{}, fpo)
	if err != nil {
		t.Fatalf("Fingerprint: %v", err)
	}
	if refRep.Breaks() != 3 {
		t.Fatalf("reference report found %d breaks, want 3", refRep.Breaks())
	}

	var refOut []byte
	for _, workers := range []int{1, 4} {
		for _, batch := range []int{1, 4096} {
			p := stream.Pipeline{
				Fingerprint: &fpo,
				Options:     stream.Options{Workers: workers, Batch: batch},
			}
			var out bytes.Buffer
			res, err := p.Run(openSource(t, path), &out, init, fin)
			if err != nil {
				t.Fatalf("workers=%d batch=%d: %v", workers, batch, err)
			}
			if res.Fingerprint == nil {
				t.Fatalf("workers=%d batch=%d: no fingerprint report", workers, batch)
			}
			if !reflect.DeepEqual(res.Fingerprint, refRep) {
				t.Errorf("workers=%d batch=%d: fingerprint report differs from the standalone pass", workers, batch)
			}
			if refOut == nil {
				refOut = out.Bytes()
			} else if !bytes.Equal(refOut, out.Bytes()) {
				t.Errorf("workers=%d batch=%d: output bytes differ", workers, batch)
			}
		}
	}
}

// TestFingerprintObserverOnly: a pipeline with the fingerprint stage on
// must reproduce every other output of the same pipeline with it off —
// bit for bit, including through the CLC path's sink tee.
func TestFingerprintObserverOnly(t *testing.T) {
	path, init, fin := synthFile(t, fpSpec(xrand.SeedAt(fpSeed, 2)))
	fpo := fingerprint.Options{}
	for _, useCLC := range []bool{false, true} {
		var plainOut, fpOut bytes.Buffer
		plain := stream.Pipeline{CLC: useCLC}
		resPlain, err := plain.Run(openSource(t, path), &plainOut, init, fin)
		if err != nil {
			t.Fatalf("clc=%v plain: %v", useCLC, err)
		}
		withFP := stream.Pipeline{CLC: useCLC, Fingerprint: &fpo}
		resFP, err := withFP.Run(openSource(t, path), &fpOut, init, fin)
		if err != nil {
			t.Fatalf("clc=%v fingerprint: %v", useCLC, err)
		}
		if !bytes.Equal(plainOut.Bytes(), fpOut.Bytes()) {
			t.Errorf("clc=%v: fingerprint stage changed the output bytes", useCLC)
		}
		if !reflect.DeepEqual(resPlain.Before, resFP.Before) || !reflect.DeepEqual(resPlain.After, resFP.After) {
			t.Errorf("clc=%v: fingerprint stage changed a census", useCLC)
		}
		if !reflect.DeepEqual(resPlain.CLCReport, resFP.CLCReport) {
			t.Errorf("clc=%v: fingerprint stage changed the CLC report", useCLC)
		}
		if resPlain.Distortion != resFP.Distortion {
			t.Errorf("clc=%v: fingerprint stage changed the distortion figures", useCLC)
		}
		if resFP.Fingerprint == nil || len(resFP.Fingerprint.Ranks) != 4 {
			t.Errorf("clc=%v: fingerprint report missing", useCLC)
		}
		if resPlain.Fingerprint != nil {
			t.Errorf("clc=%v: report present without the stage enabled", useCLC)
		}
	}
}

// TestFingerprintAutoKnotCorrection: the report's auto-knot correction
// plugs back into the pipeline as the base correction and the distorted
// ranks map near the master base again (the -autoknots path).
func TestFingerprintAutoKnotCorrection(t *testing.T) {
	spec := fpSpec(xrand.SeedAt(fpSeed, 3))
	// drop the reset: its rank degrades to a single piece by design
	spec.DistortClock = faultinject.Distort([]faultinject.ClockFault{
		{Rank: 1, Kind: faultinject.Step, At: 0.25, Delta: 1e-3},
		{Rank: 2, Kind: faultinject.FreqJump, At: 0.4, Delta: 8e-4},
	})
	path, init, fin := synthFile(t, spec)
	rep, _, err := stream.Fingerprint(openSource(t, path), stream.Options{}, fingerprint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	corr, degraded, err := rep.AutoCorrection()
	if err != nil {
		t.Fatal(err)
	}
	if len(degraded) != 0 {
		t.Fatalf("degraded ranks %v without a reset", degraded)
	}
	p := stream.Pipeline{Correction: corr}
	var out bytes.Buffer
	res, err := p.Run(openSource(t, path), &out, init, fin)
	if err != nil {
		t.Fatalf("pipeline with auto-knot correction: %v", err)
	}
	// the knotted correction must repair at least the message reversals
	// the faults introduced
	if res.After.Reversed >= res.Before.Reversed {
		t.Errorf("auto-knot correction did not reduce reversals: before %d, after %d",
			res.Before.Reversed, res.After.Reversed)
	}
}

// TestFingerprintContextCancel: the standalone pass honors
// cancellation.
func TestFingerprintContextCancel(t *testing.T) {
	path, _, _ := synthFile(t, fpSpec(xrand.SeedAt(fpSeed, 4)))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := stream.FingerprintContext(ctx, openSource(t, path), stream.Options{}, fingerprint.Options{}); err == nil {
		t.Fatal("canceled fingerprint pass returned no error")
	}
}
