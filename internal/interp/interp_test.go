package interp

import (
	"math"
	"testing"
	"testing/quick"

	"tsync/internal/measure"
	"tsync/internal/stats"
	"tsync/internal/trace"
)

func offsetTable(vals ...[2]float64) []measure.Offset {
	out := make([]measure.Offset, len(vals))
	for i, v := range vals {
		out[i] = measure.Offset{Rank: i, WorkerTime: v[0], Offset: v[1]}
	}
	return out
}

func TestAlignOnlyShifts(t *testing.T) {
	c, err := AlignOnly(offsetTable([2]float64{0, 0}, [2]float64{0, 2.5}))
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Map(1, 10); got != 12.5 {
		t.Fatalf("Map(1,10) = %v, want 12.5", got)
	}
	if got := c.Map(0, 10); got != 10 {
		t.Fatalf("master must be unchanged, got %v", got)
	}
}

func TestLinearMatchesEquation3(t *testing.T) {
	// worker measured: (w1,o1)=(100, 1e-3), (w2,o2)=(1100, 3e-3)
	// drift = 2e-3/1000 = 2e-6
	init := offsetTable([2]float64{100, 0}, [2]float64{100, 1e-3})
	fin := offsetTable([2]float64{1100, 0}, [2]float64{1100, 3e-3})
	c, err := Linear(init, fin)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{100, 600, 1100, 2000} {
		want := tt + (3e-3-1e-3)/(1100-100)*(tt-100) + 1e-3 // Eq. 3 verbatim
		if got := c.Map(1, tt); math.Abs(got-want) > 1e-12 {
			t.Fatalf("Map(1,%v) = %v, want %v", tt, got, want)
		}
	}
}

func TestLinearEndpointsExact(t *testing.T) {
	// at the measurement points, the corrected time must equal local
	// time + measured offset exactly
	init := offsetTable([2]float64{5, 0}, [2]float64{5, -2e-4})
	fin := offsetTable([2]float64{3605, 0}, [2]float64{3605, 7e-4})
	c, err := Linear(init, fin)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Map(1, 5); math.Abs(got-(5-2e-4)) > 1e-12 {
		t.Fatalf("init endpoint: %v", got)
	}
	if got := c.Map(1, 3605); math.Abs(got-(3605+7e-4)) > 1e-9 {
		t.Fatalf("fin endpoint: %v", got)
	}
}

func TestLinearErrors(t *testing.T) {
	good := offsetTable([2]float64{0, 0}, [2]float64{0, 1})
	if _, err := Linear(nil, nil); err == nil {
		t.Fatalf("empty tables accepted")
	}
	if _, err := Linear(good, good[:1]); err == nil {
		t.Fatalf("size mismatch accepted")
	}
	// finalization not after initialization
	if _, err := Linear(good, good); err == nil {
		t.Fatalf("non-increasing worker times accepted")
	}
	bad := offsetTable([2]float64{0, 0}, [2]float64{0, 1})
	bad[1].Rank = 7
	if _, err := AlignOnly(bad); err == nil {
		t.Fatalf("wrong rank accepted by AlignOnly")
	}
	fin := offsetTable([2]float64{10, 0}, [2]float64{10, 1})
	fin[1].Rank = 7
	if _, err := Linear(good, fin); err == nil {
		t.Fatalf("wrong rank accepted by Linear")
	}
}

func TestApplyRewritesTimesOnly(t *testing.T) {
	tr := &trace.Trace{
		Procs: []trace.Proc{
			{Rank: 0, Events: []trace.Event{{Kind: trace.Send, Time: 1, True: 1, Partner: 1}}},
			{Rank: 1, Events: []trace.Event{{Kind: trace.Recv, Time: 1.5, True: 1.5, Partner: 0}}},
		},
	}
	c, err := AlignOnly(offsetTable([2]float64{0, 0}, [2]float64{0, 0.25}))
	if err != nil {
		t.Fatal(err)
	}
	out := c.Apply(tr)
	if !stats.ApproxEqual(out.Procs[1].Events[0].Time, 1.75, 1e-12) {
		t.Fatalf("corrected time %v", out.Procs[1].Events[0].Time)
	}
	if out.Procs[1].Events[0].True != 1.5 {
		t.Fatalf("True must never be rewritten")
	}
	if tr.Procs[1].Events[0].Time != 1.5 { //tsync:exact — the input trace must come back bit-for-bit untouched
		t.Fatalf("Apply mutated the input trace")
	}
}

func TestPiecewiseInterpolatesSegments(t *testing.T) {
	t1 := offsetTable([2]float64{0, 0}, [2]float64{0, 0})
	t2 := offsetTable([2]float64{100, 0}, [2]float64{100, 1e-3})
	t3 := offsetTable([2]float64{200, 0}, [2]float64{200, 1e-3}) // drift stops
	c, err := Piecewise(t1, t2, t3)
	if err != nil {
		t.Fatal(err)
	}
	// first segment: drift 1e-5
	if got, want := c.Map(1, 50), 50.0+0.5e-3; math.Abs(got-want) > 1e-12 {
		t.Fatalf("mid segment 1: %v, want %v", got, want)
	}
	// second segment: flat offset 1e-3
	if got, want := c.Map(1, 150), 150.0+1e-3; math.Abs(got-want) > 1e-12 {
		t.Fatalf("mid segment 2: %v, want %v", got, want)
	}
	// extrapolation beyond the last knot uses the last piece
	if got, want := c.Map(1, 300), 300.0+1e-3; math.Abs(got-want) > 1e-12 {
		t.Fatalf("extrapolation: %v, want %v", got, want)
	}
}

func TestPiecewiseErrors(t *testing.T) {
	t1 := offsetTable([2]float64{0, 0}, [2]float64{0, 0})
	if _, err := Piecewise(t1); err == nil {
		t.Fatalf("single table accepted")
	}
	if _, err := Piecewise(t1, t1[:1]); err == nil {
		t.Fatalf("ragged tables accepted")
	}
	if _, err := Piecewise(t1, t1); err == nil {
		t.Fatalf("non-increasing measurement times accepted")
	}
}

func TestIdentityIsNoop(t *testing.T) {
	c := Identity(3)
	if c.Ranks() != 3 {
		t.Fatalf("Ranks = %d", c.Ranks())
	}
	check := func(rank uint8, tm float64) bool {
		if math.IsNaN(tm) || math.IsInf(tm, 0) {
			return true
		}
		return c.Map(int(rank)%3, tm) == tm
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMapOutOfRangeRankIsIdentity(t *testing.T) {
	c := Identity(2)
	if c.Map(5, 3.3) != 3.3 || c.Map(-1, 3.3) != 3.3 {
		t.Fatalf("out-of-range rank must map identically")
	}
}

func TestPropertyLinearPreservesLocalOrder(t *testing.T) {
	// an affine correction with slope ~1 must preserve the order of
	// local timestamps (drift magnitudes are ppm-scale)
	init := offsetTable([2]float64{0, 0}, [2]float64{0, 5e-3})
	fin := offsetTable([2]float64{1000, 0}, [2]float64{1000, 5.9e-3})
	c, err := Linear(init, fin)
	if err != nil {
		t.Fatal(err)
	}
	check := func(aRaw, dRaw uint32) bool {
		a := float64(aRaw) * 1e-3
		d := 1e-9 + float64(dRaw)*1e-9
		return c.Map(1, a+d) > c.Map(1, a)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestApplyWithMismatchedRankCount(t *testing.T) {
	// a correction for fewer ranks than the trace leaves extras alone
	tr := &trace.Trace{Procs: []trace.Proc{
		{Rank: 0, Events: []trace.Event{{Time: 1}}},
		{Rank: 1, Events: []trace.Event{{Time: 2}}},
		{Rank: 2, Events: []trace.Event{{Time: 3}}},
	}}
	c, _ := AlignOnly(offsetTable([2]float64{0, 0}, [2]float64{0, 1}))
	out := c.Apply(tr)
	if out.Procs[2].Events[0].Time != 3 { //tsync:exact — a rank outside the offset table must pass through untouched
		t.Fatalf("uncovered rank was modified")
	}
}

func TestFromLinesAndPiecewiseLines(t *testing.T) {
	c := FromLines([]stats.Line{{Slope: 1}, {Slope: 1, Intercept: 2}})
	if got := c.Map(1, 10); got != 12 {
		t.Fatalf("FromLines Map = %v", got)
	}
	pw, err := FromPiecewiseLines(
		[]float64{0, 100},
		[][]stats.Line{
			{{Slope: 1}, {Slope: 1}},
			{{Slope: 1, Intercept: 1}, {Slope: 1, Intercept: 5}},
		})
	if err != nil {
		t.Fatal(err)
	}
	if got := pw.Map(1, 50); got != 51 {
		t.Fatalf("first piece Map = %v", got)
	}
	if got := pw.Map(1, 150); got != 155 {
		t.Fatalf("second piece Map = %v", got)
	}
	if _, err := FromPiecewiseLines(nil, nil); err == nil {
		t.Fatalf("no knots accepted")
	}
	if _, err := FromPiecewiseLines([]float64{5, 5}, [][]stats.Line{{{}, {}}}); err == nil {
		t.Fatalf("non-increasing knots accepted")
	}
	if _, err := FromPiecewiseLines([]float64{0, 1}, [][]stats.Line{{{}}}); err == nil {
		t.Fatalf("piece-count mismatch accepted")
	}
}

func TestPiecewiseKnotBoundary(t *testing.T) {
	// regression: SearchFloat64s followed by an unconditional i-- selected
	// the *preceding* piece when t equals a knot exactly. With a
	// deliberately discontinuous correction the two pieces disagree at the
	// breakpoint, so the off-by-one is observable: pieces[1] applies for
	// t >= knots[1] and must win at t == 10.
	c, err := FromPiecewiseLines(
		[]float64{0, 10},
		[][]stats.Line{{
			{Slope: 1, Intercept: 0}, // t < 10: identity
			{Slope: 1, Intercept: 5}, // t >= 10: jump by +5
		}})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Map(0, 10); got != 15 {
		t.Fatalf("Map(0, 10) = %v, want 15 (the piece starting at the knot)", got)
	}
	// the neighborhood still selects the expected sides
	if got := c.Map(0, math.Nextafter(10, 0)); got >= 10 {
		t.Fatalf("just below the knot: %v, want the first piece (< 10)", got)
	}
	if got := c.Map(0, 11); got != 16 {
		t.Fatalf("above the knot: %v, want 16", got)
	}
	// before the first knot the first piece extrapolates, including at
	// the first knot itself
	if got := c.Map(0, 0); got != 0 {
		t.Fatalf("at the first knot: %v, want 0", got)
	}
	if got := c.Map(0, -5); got != -5 {
		t.Fatalf("before the first knot: %v, want -5", got)
	}
}

func TestCorrectionEmptyRankMapsIdentity(t *testing.T) {
	// a Correction slot with no pieces behaves as identity
	c := &Correction{perRank: make([]pieces, 1)}
	if got := c.Map(0, 7.5); got != 7.5 {
		t.Fatalf("empty pieces Map = %v", got)
	}
}

// TestFromRankPieces: the prebuilt-pieces constructor (used by the
// fingerprint auto-knot path) validates shape and knot order, copies its
// inputs, and evaluates each piece over its half-open interval.
func TestFromRankPieces(t *testing.T) {
	knots := [][]float64{
		{0},
		{0, 10},
	}
	lines := [][]stats.Line{
		{{Slope: 1}},
		{{Slope: 1, Intercept: 2}, {Slope: 2, Intercept: -8}},
	}
	c, err := FromRankPieces(knots, lines)
	if err != nil {
		t.Fatalf("FromRankPieces: %v", err)
	}
	if c.Ranks() != 2 {
		t.Fatalf("Ranks() = %d, want 2", c.Ranks())
	}
	if got := c.Map(0, 5); got != 5 { //tsync:exact — identity piece: 1*5+0 is exact
		t.Errorf("rank 0 Map(5) = %v, want 5", got)
	}
	if got := c.Map(1, 5); got != 7 { //tsync:exact — 1*5+2 is exact in binary64
		t.Errorf("rank 1 Map(5) = %v, want 7 (first piece)", got)
	}
	if got := c.Map(1, 12); got != 16 { //tsync:exact — 2*12-8 is exact in binary64
		t.Errorf("rank 1 Map(12) = %v, want 16 (second piece)", got)
	}
	// the constructor must have copied: mutating the caller's slices
	// cannot change the correction
	knots[1][1] = 3
	lines[1][1] = stats.Line{}
	if got := c.Map(1, 12); got != 16 { //tsync:exact — same piece as above, post-mutation
		t.Errorf("rank 1 Map(12) after caller mutation = %v, want 16", got)
	}

	bad := []struct {
		name  string
		knots [][]float64
		lines [][]stats.Line
	}{
		{"length mismatch", [][]float64{{0}}, nil},
		{"empty rank", [][]float64{{}}, [][]stats.Line{{}}},
		{"ragged rank", [][]float64{{0, 1}}, [][]stats.Line{{{Slope: 1}}}},
		{"non-increasing knots", [][]float64{{0, 0}}, [][]stats.Line{{{Slope: 1}, {Slope: 1}}}},
	}
	for _, b := range bad {
		if _, err := FromRankPieces(b.knots, b.lines); err == nil {
			t.Errorf("%s: no error", b.name)
		}
	}
}
