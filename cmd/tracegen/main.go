// Command tracegen runs a synthetic workload on the simulated cluster and
// writes the resulting event trace (plus the offset measurements taken at
// initialization and finalization) to a .etr file for later analysis with
// tracesync.
//
// With -synth it instead emits a ring-workload trace through the streaming
// encoder: events go straight to disk as they are generated, so trace size
// is limited by disk, not memory — the generator for the streaming bench
// and differential tests.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"tsync/internal/apps"
	"tsync/internal/clock"
	"tsync/internal/measure"
	"tsync/internal/mpi"
	"tsync/internal/stream"
	"tsync/internal/topology"
	"tsync/internal/trace"
	"tsync/internal/xrand"
)

// sidecar is the offset-table file written next to the trace.
type sidecar struct {
	Init []measure.Offset `json:"init"`
	Fin  []measure.Offset `json:"fin"`
}

func main() {
	var (
		app       = flag.String("app", "pop", "workload: pop, smg, transpose")
		machine   = flag.String("machine", "xeon", "machine: xeon, ppc, opteron")
		timer     = flag.String("timer", "tsc", "timer")
		ranks     = flag.Int("ranks", 32, "MPI processes")
		seed      = flag.Uint64("seed", 1, "random seed")
		scale     = flag.Float64("scale", 1, "workload duration multiplier")
		out       = flag.String("o", "trace.etr", "output trace file")
		synth     = flag.Bool("synth", false, "stream a synthetic ring workload to disk instead of simulating (-app/-machine/-timer/-scale ignored)")
		steps     = flag.Int("steps", 1000, "ring steps per rank (with -synth)")
		collEvery = flag.Int("collevery", 10, "collective round every N steps, 0 for none (with -synth)")
		v2        = flag.Bool("v2", false, "write the checksummed v2 framing (self-synchronizing; tracesync/tracestat -salvage can recover around corruption)")
		frame     = flag.Int("frame", 0, "v2 frame size in events (0 = default)")
		columnar  = flag.Bool("columnar", false, "encode v2 frames column-major with delta-varint timestamps (smaller and faster to decode; implies -v2)")
	)
	flag.Parse()

	wopt := trace.WriterOptions{FrameEvents: *frame, Columnar: *columnar}
	if *v2 || *columnar {
		wopt.Version = trace.Version2
	}
	var err error
	if *synth {
		err = runSynth(*ranks, *steps, *collEvery, *seed, *out, wopt)
	} else {
		err = run(*app, *machine, *timer, *ranks, *seed, *scale, *out, wopt)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

// runSynth streams a synthetic trace to disk: events are encoded as they
// are generated, one at a time, so peak memory does not depend on -steps.
func runSynth(ranks, steps, collEvery int, seed uint64, out string, wopt trace.WriterOptions) error {
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	init, fin, err := stream.Synth(stream.SynthSpec{
		Ranks: ranks, Steps: steps, CollEvery: collEvery, Seed: seed,
		Version: wopt.Version, FrameEvents: wopt.FrameEvents, Columnar: wopt.Columnar,
	}, f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if err := writeSidecar(out, sidecar{Init: init, Fin: fin}); err != nil {
		return err
	}
	info, err := os.Stat(out)
	if err != nil {
		return err
	}
	events := ranks * (steps * 4)
	if collEvery > 0 {
		events += ranks * (steps / collEvery) * 2
	}
	fmt.Printf("wrote %s (%d bytes, %d events, %d ranks, streamed) and %s.offsets.json\n",
		out, info.Size(), events, ranks, out)
	return nil
}

func writeSidecar(out string, side sidecar) error {
	blob, err := json.MarshalIndent(side, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(out+".offsets.json", blob, 0o644)
}

func run(app, machine, timer string, ranks int, seed uint64, scale float64, out string, wopt trace.WriterOptions) error {
	m, err := topology.ParseMachine(machine)
	if err != nil {
		return err
	}
	k, err := clock.ParseKind(timer)
	if err != nil {
		return err
	}
	pin, err := topology.Scheduled(m, ranks, xrand.NewSource(seed^0x5bd1e995))
	if err != nil {
		return err
	}
	w, err := mpi.NewWorld(mpi.Config{Machine: m, Timer: k, Pinning: pin, Seed: seed})
	if err != nil {
		return err
	}
	var body func(*mpi.Rank)
	switch app {
	case "pop":
		px, py := grid(ranks)
		cfg := apps.DefaultPOP(px, py)
		cfg.Seed = seed
		cfg.StepTime *= scale
		body = apps.POP(cfg)
	case "smg":
		cfg := apps.DefaultSMG()
		cfg.Seed = seed
		cfg.IdleBefore *= scale
		cfg.IdleAfter *= scale
		body = apps.SMG(cfg)
	case "transpose":
		px, py := grid(ranks)
		cfg := apps.DefaultTranspose(px, py)
		cfg.Seed = seed
		cfg.StepTime *= scale
		body = apps.Transpose(cfg)
	default:
		return fmt.Errorf("unknown app %q", app)
	}
	var side sidecar
	var inner error
	err = w.Run(func(r *mpi.Rank) {
		init, err := measure.Offsets(r, 20)
		if err != nil {
			inner = err
			return
		}
		body(r)
		fin, err := measure.Offsets(r, 20)
		if err != nil {
			inner = err
			return
		}
		if r.Rank() == 0 {
			side.Init, side.Fin = init, fin
		}
	})
	if err != nil {
		return err
	}
	if inner != nil {
		return inner
	}
	tr := w.Trace()

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	n, err := trace.WriteOpts(f, tr, wopt)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if err := writeSidecar(out, side); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bytes, %d events, %d ranks) and %s.offsets.json\n",
		out, n, tr.EventCount(), len(tr.Procs), out)
	return nil
}

func grid(n int) (int, int) {
	best := 1
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			best = d
		}
	}
	return n / best, best
}
