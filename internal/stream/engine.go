package stream

import (
	"context"
	"fmt"
	"io"
	"sort"

	"tsync/internal/topology"
	"tsync/internal/trace"
)

// EventRef names one event in a trace (mirrors lclock.EventRef without
// importing it, so the dependency points analysis-ward only).
type EventRef struct {
	Rank, Idx int
}

// EdgeData is the payload carried along a happened-before edge from its
// tail to its head: the tail's timestamps plus one sink-defined value
// (the CLC forward time, a Lamport clock, ...).
type EdgeData struct {
	Raw    float64 // original local timestamp of the tail event
	Mapped float64 // tail timestamp after this pass's time mapper
	Value  float64 // sink-carried value
}

// InEdge is one resolved incoming happened-before edge of an event.
type InEdge struct {
	From EventRef
	Data EdgeData
	// LMin is the unscaled minimum message latency between the two
	// cores (Eq. 1's l_min); sinks apply their own γ.
	LMin float64
	// Logical marks collective-derived edges ("logical messages").
	Logical bool
}

// sink consumes the merged event stream. The engine guarantees: event is
// called exactly once per event, in a topological order of the
// happened-before graph, with every incoming cross edge resolved; final
// is called exactly once per event, after every out-edge's head has been
// delivered (immediately for events with no cross out-edges); rankDone
// after a rank's last event; flush after everything.
type sink interface {
	event(rank, idx int, ev *trace.Event, mapped float64, in []InEdge) (EdgeData, error)
	final(ref EventRef) error
	rankDone(rank int) error
	flush() error
}

// chanKey identifies a FIFO message channel (MPI non-overtaking rule),
// exactly like trace.Messages.
type chanKey struct {
	from, to, tag, comm int32
}

type sendEntry struct {
	ref  EventRef
	data EdgeData
	// tru is the send's oracle time: under salvage it guards FIFO
	// matching against pairing a receive with a send that happens later
	// (the real sender having been lost in a gap).
	tru float64
}

type instKey struct {
	comm, inst int32
}

// instance is one open collective operation.
type instance struct {
	key    instKey
	op     trace.CollOp
	root   int32
	begins map[int]sendEntry
	ends   map[int]bool
	// endsSeen guards against orderings the oracle-time merge cannot
	// support (an edge tail arriving after one of its heads).
	endsSeen int
}

// collClass partitions collective ops by their edge semantics.
type collClass int

const (
	oneToN collClass = iota // Bcast, Scatter: root begin → member ends
	nToOne                  // Reduce, Gather: member begins → root end
	nToN                    // Barrier, Allreduce, Allgather, Alltoall
)

func classOf(op trace.CollOp) collClass {
	switch op {
	case trace.OpBcast, trace.OpScatter:
		return oneToN
	case trace.OpReduce, trace.OpGather:
		return nToOne
	}
	return nToN
}

// engine merges the per-rank event streams in (True, rank) order — a
// topological order of the happened-before graph under the simulator's
// oracle-time guarantee — matching messages and collectives on the fly
// and feeding the sink.
type engine struct {
	src    *Source
	mapper timeMapper
	snk    sink
	opt    Options
	acct   *accounting

	// sal tolerates salvage fallout (see Options.Salvage); loss receives
	// the per-rank counters when non-nil (the first walk of a pipeline —
	// later walks over the same source see the same conditions and must
	// not double-count). lossSink absorbs counts when loss is nil.
	sal      bool
	loss     []RankLoss
	lossSink RankLoss

	heads []*trace.Event
	idx   []int
	done  []bool
	h     mergeHeap

	fifos map[chanKey][]sendEntry
	insts map[instKey]*instance
	// open[comm] lists open instances of one communicator in arrival
	// order; lastColl[comm][rank] is the highest instance rank has
	// touched on it (-1 = never).
	open     map[int32][]*instance
	lastColl map[int32][]int32

	inBuf []InEdge
}

// mergeHeap orders ranks by their head event's (True, rank). It is a
// hand-rolled binary heap over rank numbers: the comparison is two loads
// and a float compare, cheap enough that container/heap's interface
// dispatch used to dominate it. The pop order cannot differ from the
// generic heap's: (True, rank) is a strict total order over the live
// ranks, so the minimum is unique at every step.
type mergeHeap struct {
	e *engine
	r []int
}

func (m *mergeHeap) less(a, b int) bool {
	ta, tb := m.e.heads[a].True, m.e.heads[b].True
	if ta != tb { //tsync:exact — heap order on oracle times; ties break by rank below
		return ta < tb
	}
	return a < b
}

func (m *mergeHeap) push(r int) {
	m.r = append(m.r, r)
	for i := len(m.r) - 1; i > 0; {
		p := (i - 1) / 2
		if !m.less(m.r[i], m.r[p]) {
			break
		}
		m.r[i], m.r[p] = m.r[p], m.r[i]
		i = p
	}
}

func (m *mergeHeap) pop() int {
	top := m.r[0]
	last := len(m.r) - 1
	m.r[0] = m.r[last]
	m.r = m.r[:last]
	for i := 0; ; {
		c := 2*i + 1
		if c >= last {
			break
		}
		if rgt := c + 1; rgt < last && m.less(m.r[rgt], m.r[c]) {
			c = rgt
		}
		if !m.less(m.r[c], m.r[i]) {
			break
		}
		m.r[i], m.r[c] = m.r[c], m.r[i]
		i = c
	}
	return top
}

// merged is the engine's view of the (True, rank)-ordered event stream.
// Two implementations exist: flatMerger (one heap over per-rank decode
// stages — the historical path) and treeMerger (per-shard sub-merges
// feeding a root merge — shard.go). Both deliver exactly the same event
// sequence; only wall time and memory shape differ.
//
// prime is called once per rank, in rank order, before the first next;
// it surfaces rank startup decode errors in deterministic rank order.
// next returns the next event in merged order — the pointee stays valid
// until the following next call — and io.EOF once every rank is
// exhausted. A merger defers refilling the source of the event it just
// returned until the next call, so a refill error surfaces after the
// previous event was fully processed, exactly where the historical
// advance-after-process loop surfaced it.
type merged interface {
	prime(r int) error
	next() (rank int, ev *trace.Event, err error)
}

// walk merges src's ranks and feeds snk. ctx is checked between events
// (every ctxCheckEvery merge pops), so cancellation surfaces within one
// slab's worth of work; the deferred stop release makes every decode and
// shard-merge goroutine exit before walk returns. loss, when non-nil,
// receives the engine-side salvage counters (one entry per rank).
//
// Rank completion is count-driven: the cursors deliver exactly the
// retained event counts the index pass recorded (Source.Procs), so a
// rank is done the moment its count of events has been processed —
// equivalent to the historical cursor-EOF signal, but independent of
// which merger feeds the engine.
func walk(ctx context.Context, src *Source, m timeMapper, snk sink, opt Options, acct *accounting, loss []RankLoss) error {
	n := src.Ranks()
	// stop tears the merge stages down if the walk exits before
	// draining them (sink error, malformed trace, cancellation).
	stop := make(chan struct{})
	defer close(stop)
	e := &engine{
		src: src, mapper: m, snk: snk, opt: opt,
		acct:     acct,
		sal:      opt.Salvage || src.Salvaged(),
		loss:     loss,
		heads:    make([]*trace.Event, n),
		idx:      make([]int, n),
		done:     make([]bool, n),
		fifos:    map[chanKey][]sendEntry{},
		insts:    map[instKey]*instance{},
		open:     map[int32][]*instance{},
		lastColl: map[int32][]int32{},
	}
	e.h.e = e
	var mg merged
	if shards := shardCount(n, opt.Shards); shards > 1 {
		mg = newTreeMerger(e, src, opt, shards, stop)
	} else {
		mg = newFlatMerger(e, src, opt, stop)
	}
	remaining := make([]int, n)
	for r := 0; r < n; r++ {
		remaining[r] = src.Procs()[r].EventCount
	}
	for r := 0; r < n; r++ {
		if err := mg.prime(r); err != nil {
			return err
		}
		if remaining[r] == 0 {
			// a rank with no events completes instances it will never join
			if err := e.finishRank(r); err != nil {
				return err
			}
		}
	}
	ticks := 0
	for {
		if ticks&(ctxCheckEvery-1) == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		ticks++
		r, ev, err := mg.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		e.heads[r] = ev
		if err := e.process(r); err != nil {
			return err
		}
		e.idx[r]++
		if remaining[r]--; remaining[r] == 0 {
			if err := e.finishRank(r); err != nil {
				return err
			}
		}
	}
	if e.sal {
		if err := e.cleanupSalvage(); err != nil {
			return err
		}
	} else {
		// report the first failure in key order, not map order, so a
		// damaged trace produces the same error on every run
		for _, k := range sortedChanKeys(e.fifos) {
			if q := e.fifos[k]; len(q) > 0 {
				return fmt.Errorf("stream: %d unmatched Sends from %d to %d tag %d", len(q), k.from, k.to, k.tag)
			}
		}
		for _, ik := range sortedInstKeys(e.insts) {
			ins := e.insts[ik]
			return fmt.Errorf("stream: collective comm %d instance %d incomplete at end of trace (%d begins, %d ends)",
				ins.key.comm, ins.key.inst, len(ins.begins), len(ins.ends))
		}
	}
	return e.snk.flush()
}

// ctxCheckEvery is how many merge pops (or encoded events, in the
// assembly passes) go between context checks: frequent enough that
// cancellation lands within a slab's worth of work, rare enough that
// the atomic load disappears in the merge cost.
const ctxCheckEvery = 1024

// lossAt returns the rank's loss record, or a discard slot when the
// walk does not collect counters.
func (e *engine) lossAt(r int) *RankLoss {
	if e.loss == nil || r < 0 || r >= len(e.loss) {
		return &e.lossSink
	}
	return &e.loss[r]
}

// cleanupSalvage releases the pending state a damaged trace legitimately
// leaves behind — sends whose receive was lost, collectives missing
// participants — finalizing every held entry so sinks with finality
// bookkeeping (the CLC deque) can drain. Iteration is over sorted keys:
// the per-rank finalization order must not depend on map order.
func (e *engine) cleanupSalvage() error {
	for _, k := range sortedChanKeys(e.fifos) {
		for _, se := range e.fifos[k] {
			e.lossAt(se.ref.Rank).DroppedSends++
			if err := e.snk.final(se.ref); err != nil {
				return err
			}
			if err := e.acct.add(se.ref.Rank, -1); err != nil {
				return err
			}
		}
		delete(e.fifos, k)
	}
	for _, ik := range sortedInstKeys(e.insts) {
		ins := e.insts[ik]
		for _, r := range sortedRanks(ins.begins) {
			e.lossAt(r).BrokenCollectives++
			if err := e.snk.final(ins.begins[r].ref); err != nil {
				return err
			}
			if err := e.acct.add(r, -1); err != nil {
				return err
			}
		}
		for _, r := range sortedRanks(ins.ends) {
			e.lossAt(r).BrokenCollectives++
			if err := e.acct.add(r, -1); err != nil {
				return err
			}
		}
		delete(e.insts, ik)
	}
	for comm := range e.open {
		delete(e.open, comm)
	}
	return nil
}

// sortedChanKeys returns the fifo keys ordered by (from, to, tag, comm),
// so every per-channel walk is independent of map visit order.
func sortedChanKeys(m map[chanKey][]sendEntry) []chanKey {
	keys := make([]chanKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.from != b.from {
			return a.from < b.from
		}
		if a.to != b.to {
			return a.to < b.to
		}
		if a.tag != b.tag {
			return a.tag < b.tag
		}
		return a.comm < b.comm
	})
	return keys
}

// sortedInstKeys returns the open-collective keys ordered by
// (comm, inst).
func sortedInstKeys(m map[instKey]*instance) []instKey {
	keys := make([]instKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].comm != keys[j].comm {
			return keys[i].comm < keys[j].comm
		}
		return keys[i].inst < keys[j].inst
	})
	return keys
}

// sortedRanks returns the keys of a per-rank map in ascending order.
func sortedRanks[V any](m map[int]V) []int {
	rs := make([]int, 0, len(m))
	for r := range m {
		rs = append(rs, r)
	}
	sort.Ints(rs)
	return rs
}

// finishRank records a rank's exhaustion: the sink's rankDone callback
// fires, then every communicator's open instances are re-checked — a
// finished rank can complete instances it will never join.
func (e *engine) finishRank(r int) error {
	e.done[r] = true
	if err := e.snk.rankDone(r); err != nil {
		return err
	}
	for comm := range e.open {
		if err := e.completeInstances(comm); err != nil {
			return err
		}
	}
	return nil
}

// flatMerger is the single-heap merge: one decode-ahead stage per rank,
// all heads in one mergeHeap. The refill of the rank whose event the
// last next returned is deferred to the following call, so a mid-stream
// decode error surfaces after the previous event was processed — the
// exact position the historical advance-after-process loop gave it.
type flatMerger struct {
	e       *engine
	cursors []*slabCursor
	pending int // rank to refill before the next pop; -1 = none
}

func newFlatMerger(e *engine, src *Source, opt Options, stop chan struct{}) *flatMerger {
	pool := newSlabPool(opt.Batch)
	f := &flatMerger{e: e, cursors: make([]*slabCursor, src.Ranks()), pending: -1}
	for r := range f.cursors {
		f.cursors[r] = src.slabCursor(r, pool, stop)
	}
	return f
}

func (f *flatMerger) prime(r int) error {
	ev, err := f.cursors[r].nextRef()
	if err == io.EOF {
		return nil
	}
	if err != nil {
		return err
	}
	f.e.heads[r] = ev
	f.e.h.push(r)
	return nil
}

func (f *flatMerger) next() (int, *trace.Event, error) {
	if r := f.pending; r >= 0 {
		f.pending = -1
		ev, err := f.cursors[r].nextRef()
		switch {
		case err == io.EOF:
			// exhausted; walk's count bookkeeping already fired rankDone
		case err != nil:
			return 0, nil, err
		default:
			f.e.heads[r] = ev
			f.e.h.push(r)
		}
	}
	if len(f.e.h.r) == 0 {
		return 0, nil, io.EOF
	}
	r := f.e.h.pop()
	f.pending = r
	return r, f.e.heads[r], nil
}

// lmin returns the unscaled minimum latency between two ranks' cores.
func (e *engine) lmin(a, b int) float64 {
	if a < 0 || a >= len(e.src.procs) || b < 0 || b >= len(e.src.procs) {
		return 0
	}
	return e.src.head.MinLatency[topology.Relate(e.src.procs[a].Core, e.src.procs[b].Core)]
}

func (e *engine) process(r int) error {
	ev := e.heads[r]
	idx := e.idx[r]
	mapped, err := e.mapper.mapTime(r, idx, ev)
	if err != nil {
		return err
	}
	in := e.inBuf[:0]
	var matchedSend EventRef
	var haveMatch bool
	// orphanEnd marks a CollEnd that cannot join any instance (salvage
	// only): it is treated as a local event, bypassing the collective
	// bookkeeping below.
	var orphanEnd bool

	switch ev.Kind {
	case trace.Recv:
		k := chanKey{from: ev.Partner, to: int32(r), tag: ev.Tag, comm: ev.Comm}
		q := e.fifos[k]
		matched := len(q) > 0
		if matched && e.sal && q[0].tru >= ev.True { //tsync:exact — genuine pairs strictly increase oracle time; a head at or past the receive belongs to a later message whose real receive is still ahead
			matched = false
		}
		if !matched {
			if !e.sal {
				return fmt.Errorf("stream: rank %d event %d: Recv from %d tag %d has no matching Send processed (unmatched message or oracle-order violation)", r, idx, ev.Partner, ev.Tag)
			}
			// the send was lost in a gap: keep the receive as a local
			// event with no incoming edge
			e.lossAt(r).OrphanRecvs++
			break
		}
		se := q[0]
		if len(q) == 1 {
			delete(e.fifos, k)
		} else {
			e.fifos[k] = q[1:]
		}
		if err := e.acct.add(se.ref.Rank, -1); err != nil {
			return err
		}
		in = append(in, InEdge{From: se.ref, Data: se.data, LMin: e.lmin(se.ref.Rank, r)})
		matchedSend, haveMatch = se.ref, true
	case trace.CollEnd:
		ins, err := e.instanceFor(r, ev, false)
		if err == nil {
			if _, ok := ins.begins[r]; !ok {
				err = fmt.Errorf("stream: rank %d ended collective comm %d instance %d without beginning it", r, ev.Comm, ev.Instance)
			} else if ins.ends[r] {
				err = fmt.Errorf("stream: rank %d has duplicate CollEnd for comm %d instance %d", r, ev.Comm, ev.Instance)
			}
		}
		if err != nil {
			if !e.sal {
				return err
			}
			// the begin (or the whole instance) was lost in a gap: keep
			// the end as a local event
			e.lossAt(r).BrokenCollectives++
			orphanEnd = true
			break
		}
		root := int(ins.root)
		switch classOf(ins.op) {
		case oneToN:
			if r != root {
				if rb, ok := ins.begins[root]; ok {
					in = append(in, InEdge{From: rb.ref, Data: rb.data, LMin: e.lmin(root, r), Logical: true})
				}
			}
		case nToOne:
			if r == root {
				// ascending-rank edge order: sinks fold the in-edges in
				// slice order, and float folds are order-sensitive
				for _, q := range sortedRanks(ins.begins) {
					if q == r {
						continue
					}
					rec := ins.begins[q]
					in = append(in, InEdge{From: rec.ref, Data: rec.data, LMin: e.lmin(q, r), Logical: true})
				}
			}
		case nToN:
			for _, q := range sortedRanks(ins.begins) {
				if q == r {
					continue
				}
				rec := ins.begins[q]
				in = append(in, InEdge{From: rec.ref, Data: rec.data, LMin: e.lmin(q, r), Logical: true})
			}
		}
	}

	data, err := e.snk.event(r, idx, ev, mapped, in)
	if err != nil {
		return err
	}
	e.inBuf = in[:0]
	ref := EventRef{Rank: r, Idx: idx}

	switch ev.Kind {
	case trace.Send:
		k := chanKey{from: int32(r), to: ev.Partner, tag: ev.Tag, comm: ev.Comm}
		e.fifos[k] = append(e.fifos[k], sendEntry{ref: ref, data: data, tru: ev.True})
		if err := e.acct.add(r, 1); err != nil {
			return err
		}
	case trace.Recv:
		if haveMatch {
			// the send's only out-edge has been delivered
			if err := e.snk.final(matchedSend); err != nil {
				return err
			}
		}
		if err := e.snk.final(ref); err != nil {
			return err
		}
	case trace.CollBegin:
		ins, err := e.instanceFor(r, ev, true)
		if err == nil {
			if _, dup := ins.begins[r]; dup {
				err = fmt.Errorf("stream: rank %d has duplicate CollBegin for comm %d instance %d", r, ev.Comm, ev.Instance)
			} else if ins.endsSeen > 0 && classOf(ins.op) != oneToN && !e.sal {
				err = fmt.Errorf("stream: rank %d began collective comm %d instance %d after an end was processed (oracle-order violation)", r, ev.Comm, ev.Instance)
			}
		}
		if err != nil {
			if !e.sal {
				return err
			}
			// an unjoinable begin (duplicate, or op mismatch from a
			// half-lost instance) stays a local event
			e.lossAt(r).BrokenCollectives++
			if ferr := e.snk.final(ref); ferr != nil {
				return ferr
			}
			break
		}
		ins.begins[r] = sendEntry{ref: ref, data: data, tru: ev.True}
		if err := e.acct.add(r, 1); err != nil {
			return err
		}
		if err := e.touchColl(r, ev.Comm, ev.Instance); err != nil {
			return err
		}
	case trace.CollEnd:
		if orphanEnd {
			if err := e.snk.final(ref); err != nil {
				return err
			}
			break
		}
		ins := e.insts[instKey{ev.Comm, ev.Instance}]
		ins.ends[r] = true
		ins.endsSeen++
		if err := e.acct.add(r, 1); err != nil {
			return err
		}
		if err := e.snk.final(ref); err != nil {
			return err
		}
		if err := e.touchColl(r, ev.Comm, ev.Instance); err != nil {
			return err
		}
	default:
		if err := e.snk.final(ref); err != nil {
			return err
		}
	}
	return nil
}

// instanceFor finds (or, for begins, creates) the collective instance of
// an event, validating op consistency.
func (e *engine) instanceFor(r int, ev *trace.Event, create bool) (*instance, error) {
	k := instKey{ev.Comm, ev.Instance}
	ins, ok := e.insts[k]
	if !ok {
		if !create {
			return nil, fmt.Errorf("stream: rank %d ended collective comm %d instance %d without beginning it", r, ev.Comm, ev.Instance)
		}
		ins = &instance{key: k, op: ev.Op, root: ev.Root, begins: map[int]sendEntry{}, ends: map[int]bool{}}
		e.insts[k] = ins
		e.open[ev.Comm] = append(e.open[ev.Comm], ins)
	}
	if ins.op != ev.Op {
		return nil, fmt.Errorf("stream: collective comm %d instance %d mixes ops %v and %v", ev.Comm, ev.Instance, ins.op, ev.Op)
	}
	return ins, nil
}

// touchColl records that rank has reached instance inst on comm,
// enforcing per-communicator instance monotonicity, then re-checks the
// communicator's open instances for completion.
func (e *engine) touchColl(r int, comm, inst int32) error {
	seen, ok := e.lastColl[comm]
	if !ok {
		seen = make([]int32, e.src.Ranks())
		for i := range seen {
			seen[i] = -1
		}
		e.lastColl[comm] = seen
	}
	if inst < seen[r] {
		return fmt.Errorf("%w: rank %d revisits instance %d on comm %d after instance %d (collectives out of per-communicator order)", ErrUnsupported, r, inst, comm, seen[r])
	}
	seen[r] = inst
	return e.completeInstances(comm)
}

// completeInstances finalizes every open instance of comm that no rank
// can join or extend anymore: each rank has either delivered its end,
// moved past the instance on this communicator, or finished its stream.
func (e *engine) completeInstances(comm int32) error {
	openList := e.open[comm]
	kept := openList[:0]
	seen := e.lastColl[comm]
	for _, ins := range openList {
		complete := true
		for r := 0; r < e.src.Ranks(); r++ {
			if ins.ends[r] {
				continue
			}
			past := e.done[r] || (seen != nil && seen[r] > ins.key.inst)
			if !past {
				complete = false
				break
			}
			if _, begun := ins.begins[r]; begun && !e.sal {
				return fmt.Errorf("stream: rank %d began collective comm %d instance %d but never ended it", r, comm, ins.key.inst)
			}
		}
		if !complete {
			kept = append(kept, ins)
			continue
		}
		for r, rec := range ins.begins {
			if e.sal && !ins.ends[r] {
				// the rank's end was lost in a gap; release the begin
				e.lossAt(r).BrokenCollectives++
			}
			if err := e.snk.final(rec.ref); err != nil {
				return err
			}
			if err := e.acct.add(r, -1); err != nil {
				return err
			}
		}
		for r := range ins.ends {
			if err := e.acct.add(r, -1); err != nil {
				return err
			}
		}
		delete(e.insts, ins.key)
	}
	if len(kept) == 0 {
		delete(e.open, comm)
	} else {
		e.open[comm] = kept
	}
	return nil
}
