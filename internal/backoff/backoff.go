// Package backoff provides deterministic exponential backoff with
// jitter for retry loops: client reconnects to tsyncd, spill-file
// creation retries, and any future transient-failure path.
//
// Like everything else in this repository, the delay sequence is a pure
// function of its seed: jitter comes from internal/xrand, never from
// wall-clock-derived entropy, so a failing retry schedule reproduces
// byte-for-byte under test. Only the act of actually waiting touches the
// host clock, and that is confined to Sleep — which tests replace with a
// recording stub.
package backoff

import (
	"context"
	"math"
	"time"

	"tsync/internal/xrand"
)

// Policy describes a capped exponential backoff with multiplicative
// jitter. The zero value is not useful; fill in at least Base, or use
// Default.
type Policy struct {
	// Base is the nominal first delay.
	Base time.Duration
	// Cap bounds every delay; zero means no cap.
	Cap time.Duration
	// Factor multiplies the nominal delay per attempt; values below 1
	// (including zero) select 2.
	Factor float64
	// Jitter spreads each delay uniformly over
	// [delay*(1-Jitter), delay*(1+Jitter)]. It is clamped to [0, 1];
	// zero means no jitter — fully deterministic delays.
	Jitter float64
}

// Default is the policy the tsyncd client and spill retries use: 50 ms
// doubling to a 5 s cap with ±50% jitter.
func Default() Policy {
	return Policy{Base: 50 * time.Millisecond, Cap: 5 * time.Second, Factor: 2, Jitter: 0.5}
}

// Backoff produces one seeded delay sequence. It is not safe for
// concurrent use; derive one per retry loop (each with its own seed or
// xrand.SeedAt stream position) so loops never perturb each other's
// schedules.
type Backoff struct {
	pol     Policy
	rng     *xrand.Source
	attempt int
}

// New returns a sequence over pol whose jitter stream is seeded with
// seed. Two Backoffs built from equal (pol, seed) produce identical
// delays.
func New(pol Policy, seed uint64) *Backoff {
	if pol.Factor < 1 {
		pol.Factor = 2
	}
	if pol.Jitter < 0 {
		pol.Jitter = 0
	}
	if pol.Jitter > 1 {
		pol.Jitter = 1
	}
	return &Backoff{pol: pol, rng: xrand.NewSource(seed)}
}

// Attempt reports how many delays have been produced since construction
// or the last Reset.
func (b *Backoff) Attempt() int { return b.attempt }

// Next returns the delay to wait before the next retry and advances the
// sequence: Base·Factor^attempt, capped at Cap, jittered by ±Jitter.
// The result is never negative and never exceeds Cap (when set), even
// after the exponential would overflow.
func (b *Backoff) Next() time.Duration {
	d := float64(b.pol.Base)
	for i := 0; i < b.attempt; i++ {
		d *= b.pol.Factor
		if b.pol.Cap > 0 && d >= float64(b.pol.Cap) {
			d = float64(b.pol.Cap)
			break
		}
	}
	if b.pol.Cap > 0 && d > float64(b.pol.Cap) {
		d = float64(b.pol.Cap)
	}
	b.attempt++
	if b.pol.Jitter > 0 {
		d *= b.rng.Uniform(1-b.pol.Jitter, 1+b.pol.Jitter)
		if b.pol.Cap > 0 && d > float64(b.pol.Cap) {
			d = float64(b.pol.Cap)
		}
	}
	if d < 0 {
		d = 0
	}
	if d >= math.MaxInt64 {
		// an uncapped exponential eventually exceeds Duration's range;
		// saturate instead of overflowing negative
		return math.MaxInt64
	}
	return time.Duration(d)
}

// Reset rewinds the attempt counter (a success ends the failure run) but
// keeps consuming the same jitter stream, so a Backoff stays a single
// deterministic sequence across reset boundaries.
func (b *Backoff) Reset() { b.attempt = 0 }

// Sleep waits for d or until ctx is canceled, whichever comes first,
// returning ctx.Err() on cancellation. It is the only place the package
// touches the host clock.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d) //tsync:wallclock — the retry wait is a real-time pause by definition; the delay length itself is xrand-seeded and tested without timers
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// SleepFunc is the waiting primitive Retry uses between attempts; tests
// substitute a recorder to observe the schedule without waiting.
type SleepFunc func(ctx context.Context, d time.Duration) error

// Retry runs fn until it succeeds, permanent failure, attempts are
// exhausted, or ctx is canceled, sleeping b.Next() between tries with
// sleep (nil selects Sleep). attempts bounds the number of fn calls;
// values below 1 mean exactly one. fn's error is returned verbatim when
// final; a retryable error chain stops early — with the last fn error —
// if ctx cancels mid-wait. fn decides retryability through the permanent
// callback: when permanent(err) reports true the error is final.
func Retry(ctx context.Context, b *Backoff, attempts int, sleep SleepFunc, permanent func(error) bool, fn func() error) error {
	if sleep == nil {
		sleep = Sleep
	}
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for try := 0; try < attempts; try++ {
		if cerr := ctx.Err(); cerr != nil {
			if err != nil {
				return err
			}
			return cerr
		}
		if err = fn(); err == nil {
			return nil
		}
		if permanent != nil && permanent(err) {
			return err
		}
		if try == attempts-1 {
			break
		}
		if serr := sleep(ctx, b.Next()); serr != nil {
			return err
		}
	}
	return err
}
