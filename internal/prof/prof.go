// Package prof wires the runtime/pprof profilers into command-line
// tools: one call enables CPU and heap profiling from flag values, and
// the returned stop function finalizes both files. It exists so every
// cmd/ binary exposes identical -cpuprofile/-memprofile behavior for
// in-container performance work.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath unless it is empty. The
// returned stop function ends the CPU profile and, when memPath is
// non-empty, writes an allocs profile there (after a GC, so live-heap
// figures are accurate). Callers must invoke stop exactly once, after
// the workload, even if only memPath was set.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		cpuFile = f
	}
	return func() error {
		var err error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			err = cpuFile.Close()
		}
		if memPath != "" {
			if werr := writeHeapProfile(memPath); err == nil {
				err = werr
			}
		}
		return err
	}, nil
}

func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	err = pprof.Lookup("allocs").WriteTo(f, 0)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("heap profile: %w", err)
	}
	return nil
}
