// Package ctxflow defines an analyzer that machine-checks the
// cancellation contract PR 5 established for the streaming layer: every
// long-running entry point is cancellable, promptly, and contexts flow
// through call chains rather than hiding in state.
//
// The contract matters because the ROADMAP's production targets (a
// resident tsyncd service, scale-out merge, live estimators) multiply
// the places where an unbounded loop can wedge a worker: a pipeline pass
// over a billion-event trace must stop when its caller gives up, and the
// leak-free-teardown tests in internal/stream only stay meaningful if
// new entry points keep accepting and polling a context.
//
// Three rules apply everywhere:
//
//   - a context.Context parameter, when present, comes first (the
//     standard library convention; mixed positions break the mechanical
//     "wrap the first argument" refactors that timeouts ride on);
//   - contexts are not stored in struct fields — a stored context
//     outlives the call it was scoped to and silently decouples
//     cancellation from the work it governs;
//
// and two rules apply to the long-running packages (internal/stream,
// internal/runner, and any future tsyncd code):
//
//   - an exported function whose body runs unbounded work — a `for` loop
//     with no condition, a range over a channel, or a spawned
//     goroutine — must accept a context.Context as its first parameter
//     (convenience wrappers that delegate to a Context-taking variant
//     are naturally exempt: the loop lives in the callee);
//   - inside a function that does take a context, a `for` loop with no
//     condition must mention the context somewhere in its body — polling
//     ctx.Err() on a stride, selecting on ctx.Done(), or passing ctx to
//     the callee that blocks. A loop that provably cannot observe
//     cancellation is a leak in waiting.
//
// A bounded loop that intentionally ignores its context carries a
// "tsync:nocancel" comment on the `for` line explaining why prompt
// cancellation is not needed there.
package ctxflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"tsync/internal/lint"
)

const doc = `enforce the cancellation contract: ctx first, never stored, polled in unbounded loops

Long-running exported entry points in internal/stream, internal/runner
and tsyncd code must take a context.Context first; condition-less loops
in context-taking functions must observe it; contexts never live in
structs.`

// Analyzer is the ctxflow analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "ctxflow",
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// directive is the per-line suppression marker.
const directive = "tsync:nocancel"

// longRunningPkg reports whether the package is one whose entry points
// carry the cancellation contract.
func longRunningPkg(path string) bool {
	return lint.PathHasSuffix(path, "internal/stream") ||
		lint.PathHasSuffix(path, "internal/runner") ||
		lint.PathHasSegment(path, "tsyncd")
}

func run(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	target := longRunningPkg(pass.Pkg.Path())
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.StructType)(nil)}, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.StructType:
			checkStructFields(pass, n)
		case *ast.FuncDecl:
			checkFunc(pass, n, target)
		}
	})
	return nil, nil
}

// checkStructFields reports fields of type context.Context.
func checkStructFields(pass *analysis.Pass, st *ast.StructType) {
	for _, f := range st.Fields.List {
		if isContextType(pass.TypesInfo.TypeOf(f.Type)) && !lint.IsTestFile(pass, f.Pos()) {
			pass.Reportf(f.Pos(), "context.Context stored in a struct field: a stored context outlives the call it was scoped to; pass ctx as the first parameter of each method that needs it")
		}
	}
}

// checkFunc applies the parameter-position rule everywhere and, in
// long-running packages, the entry-point and polling rules.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, target bool) {
	if fd.Body == nil || lint.IsTestFile(pass, fd.Pos()) {
		return
	}
	ctxParam, ctxIndex := contextParam(pass, fd.Type)
	if ctxParam != nil && ctxIndex != 0 {
		pass.Reportf(ctxParam.Pos(), "context.Context is parameter %d of %s: ctx comes first by convention so call sites and wrappers stay mechanical", ctxIndex+1, fd.Name.Name)
	}
	if !target {
		return
	}
	if ctxParam == nil {
		if fd.Name.IsExported() {
			if pos, what := unboundedWork(pass, fd.Body); pos.IsValid() && !lint.HasLineDirective(pass, pos, directive) {
				pass.Reportf(fd.Name.Pos(), "exported %s runs unbounded work (%s) without a context.Context: long-running entry points must be cancellable; accept ctx as the first parameter or delegate the loop to a Context-taking variant", fd.Name.Name, what)
			}
		}
		return
	}
	checkLoopsPoll(pass, fd.Body, ctxParam)
}

// contextParam returns the context.Context parameter object of ft and
// its position, or (nil, 0).
func contextParam(pass *analysis.Pass, ft *ast.FuncType) (*ast.Ident, int) {
	if ft.Params == nil {
		return nil, 0
	}
	i := 0
	for _, f := range ft.Params.List {
		isCtx := isContextType(pass.TypesInfo.TypeOf(f.Type))
		if len(f.Names) == 0 {
			if isCtx {
				return ast.NewIdent("_"), i // unnamed ctx param: position still checked
			}
			i++
			continue
		}
		for _, name := range f.Names {
			if isCtx {
				return name, i
			}
			i++
		}
	}
	return nil, 0
}

// unboundedWork finds the first construct in body that runs until told
// to stop: a condition-less for loop, a range over a channel, or a
// spawned goroutine.
func unboundedWork(pass *analysis.Pass, body *ast.BlockStmt) (pos token.Pos, what string) {
	var found token.Pos
	var kind string
	ast.Inspect(body, func(n ast.Node) bool {
		if found.IsValid() {
			return false
		}
		switch n := n.(type) {
		case *ast.ForStmt:
			if n.Cond == nil {
				found, kind = n.For, "a for loop with no condition"
				return false
			}
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found, kind = n.For, "a range over a channel"
					return false
				}
			}
		case *ast.GoStmt:
			found, kind = n.Go, "a spawned goroutine"
			return false
		}
		return true
	})
	return found, kind
}

// checkLoopsPoll reports condition-less for loops that never mention the
// function's context.
func checkLoopsPoll(pass *analysis.Pass, body *ast.BlockStmt, ctx *ast.Ident) {
	obj := pass.TypesInfo.ObjectOf(ctx)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // literals have their own (captured or passed) discipline
		}
		fs, ok := n.(*ast.ForStmt)
		if !ok || fs.Cond != nil {
			return true
		}
		if lint.HasLineDirective(pass, fs.Pos(), directive) {
			return true
		}
		if obj != nil && mentionsObject(pass, fs.Body, obj) {
			return true
		}
		pass.Reportf(fs.Pos(), "condition-less loop never observes %s: poll ctx.Err() on a stride or select on ctx.Done() so cancellation stays prompt, or annotate the for line with a tsync:nocancel comment saying why the loop is bounded", ctx.Name)
		return true
	})
}

// mentionsObject reports whether obj is used anywhere under n.
func mentionsObject(pass *analysis.Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
