package poolcheck_test

import (
	"testing"

	"tsync/internal/lint/linttest"
	"tsync/internal/lint/poolcheck"
)

func TestPoolcheck(t *testing.T) {
	linttest.Run(t, poolcheck.Analyzer, "a")
}
