package clc

// Race regression tests for the parallel replay implementation
// (forwardParallel): one goroutine per rank, cross edges as buffered
// channels, rows of out joined by wg.Wait. The static locked analyzer
// annotates the disjoint-index writes with tsync:locked; these tests are
// the dynamic half of that argument — `make race` replays the fan-out
// under the race detector with enough ranks and rounds that unsafe
// schedules would be observed.

import (
	"testing"

	"tsync/internal/topology"
	"tsync/internal/trace"
	"tsync/internal/xrand"
)

// wideRingTrace builds an nProcs-rank ring exchanging rounds of messages
// with skewed, noisy timestamps — every rank both sends and receives each
// round, so the parallel replay has a dense cross-edge graph to
// synchronize on.
func wideRingTrace(nProcs, rounds int, seed uint64) *trace.Trace {
	s := xrand.NewSource(seed)
	tr := &trace.Trace{}
	tr.MinLatency = [4]float64{0, 0.46e-6, 0.84e-6, 4.2e-6}
	skews := make([]float64, nProcs)
	for i := range skews {
		skews[i] = s.Normal(0, 100e-6)
	}
	procs := make([]trace.Proc, nProcs)
	for i := range procs {
		procs[i] = trace.Proc{Rank: i, Core: topology.CoreID{Node: i}}
	}
	tt := 0.0
	for round := 0; round < rounds; round++ {
		tt += 50e-6
		for i := range procs {
			dst := (i + 1) % nProcs
			procs[i].Events = append(procs[i].Events, trace.Event{
				Kind: trace.Send, Time: tt + skews[i], True: tt,
				Partner: int32(dst), Tag: int32(round), Region: -1, Root: -1})
		}
		tt += 10e-6
		for i := range procs {
			src := (i - 1 + nProcs) % nProcs
			procs[i].Events = append(procs[i].Events, trace.Event{
				Kind: trace.Recv, Time: tt + skews[i] + s.Normal(0, 5e-6), True: tt,
				Partner: int32(src), Tag: int32(round), Region: -1, Root: -1})
		}
	}
	// local timestamps must be locally monotone for a valid trace
	for i := range procs {
		for j := 1; j < len(procs[i].Events); j++ {
			if procs[i].Events[j].Time <= procs[i].Events[j-1].Time {
				procs[i].Events[j].Time = procs[i].Events[j-1].Time + 1e-9
			}
		}
	}
	tr.Procs = procs
	return tr
}

// TestCorrectParallelRace exercises the goroutine fan-out repeatedly on a
// wide trace. Under -race this is the regression test for the
// forwardParallel data-sharing design (disjoint out rows, channel-carried
// bounds, wg.Wait join).
func TestCorrectParallelRace(t *testing.T) {
	opt := DefaultOptions()
	for _, shape := range []struct{ procs, rounds int }{
		{4, 50}, {16, 20}, {32, 8},
	} {
		for seed := uint64(0); seed < 3; seed++ {
			tr := wideRingTrace(shape.procs, shape.rounds, 1000+seed)
			seq, repS, err := Correct(tr, opt)
			if err != nil {
				t.Fatalf("procs=%d seed=%d: sequential: %v", shape.procs, seed, err)
			}
			par, repP, err := CorrectParallel(tr, opt)
			if err != nil {
				t.Fatalf("procs=%d seed=%d: parallel: %v", shape.procs, seed, err)
			}
			if repS != repP {
				t.Fatalf("procs=%d seed=%d: reports differ: %+v vs %+v", shape.procs, seed, repS, repP)
			}
			for i := range seq.Procs {
				for j := range seq.Procs[i].Events {
					if seq.Procs[i].Events[j].Time != par.Procs[i].Events[j].Time { //tsync:exact — determinism: the parallel replay must agree bit-for-bit
						t.Fatalf("procs=%d seed=%d: disagree at %d/%d", shape.procs, seed, i, j)
					}
				}
			}
		}
	}
}
