package stream

import (
	"fmt"
	"io"
	"sync"

	"tsync/internal/trace"
)

// Source is an indexed .etr file: the header and per-process metadata
// are held in memory (O(ranks + regions)), while events stay on disk and
// are decoded on demand through per-rank cursors. The index is built by
// one linear decode pass, so a corrupt or truncated file fails here with
// trace.ErrBadFormat before any analysis starts.
type Source struct {
	r     io.ReaderAt
	head  trace.Header
	procs []trace.ProcHeader
	// eventOff[i] and endOff[i] bound proc i's event bytes.
	eventOff, endOff []int64
	// firstRaw[i] is proc i's first event Time (0 when it has none);
	// the Lamport schedule and summary passes need it without a decode.
	firstRaw []float64
	events   int64
}

// NewSource indexes a trace readable at r. The reader must cover the
// whole encoded trace.
func NewSource(r io.ReaderAt) (*Source, error) {
	const probe = 1 << 62 // section length; reads stop at EOF
	er, err := trace.NewEventReader(io.NewSectionReader(r, 0, probe))
	if err != nil {
		return nil, err
	}
	s := &Source{r: r, head: er.Header()}
	for {
		ph, err := er.NextProc()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if ph.Rank != len(s.procs) {
			return nil, fmt.Errorf("stream: proc %d has rank %d", len(s.procs), ph.Rank)
		}
		s.procs = append(s.procs, ph)
		s.eventOff = append(s.eventOff, er.Offset())
		first := 0.0
		prevTrue := 0.0
		var ev trace.Event
		for j := 0; j < ph.EventCount; j++ {
			if err := er.Read(&ev); err != nil {
				return nil, err
			}
			if j == 0 {
				first = ev.Time
				prevTrue = ev.True
			} else if ev.True < prevTrue {
				return nil, fmt.Errorf("stream: rank %d event %d: oracle time regressed", ph.Rank, j)
			} else {
				prevTrue = ev.True
			}
			s.events++
		}
		s.firstRaw = append(s.firstRaw, first)
		s.endOff = append(s.endOff, er.Offset())
	}
	return s, nil
}

// Header returns the file header.
func (s *Source) Header() trace.Header { return s.head }

// Procs returns the per-process headers.
func (s *Source) Procs() []trace.ProcHeader { return s.procs }

// Ranks returns the process count.
func (s *Source) Ranks() int { return len(s.procs) }

// Events returns the total event count.
func (s *Source) Events() int64 { return s.events }

// FirstTime returns rank's first event timestamp (its raw local Time),
// or 0 when the rank recorded no events.
func (s *Source) FirstTime(rank int) float64 { return s.firstRaw[rank] }

// Cursor is a sequential decoder over one rank's events.
type Cursor struct {
	d         *trace.EventDecoder
	remaining int
}

// Cursor opens a fresh decoder over rank's events. Cursors are
// independent; any number may be open at once.
func (s *Source) Cursor(rank int) *Cursor {
	sec := io.NewSectionReader(s.r, s.eventOff[rank], s.endOff[rank]-s.eventOff[rank])
	return &Cursor{d: trace.NewEventDecoder(sec), remaining: s.procs[rank].EventCount}
}

// Next decodes the rank's next event into ev, returning io.EOF after the
// last one.
func (c *Cursor) Next(ev *trace.Event) error {
	if c.remaining == 0 {
		return io.EOF
	}
	if err := c.d.Decode(ev); err != nil {
		if err == io.EOF {
			return io.ErrUnexpectedEOF
		}
		return err
	}
	c.remaining--
	return nil
}

// slab is one fixed-capacity batch of decoded events — the unit of work
// the staged pipeline hands between decode, merge, and encode.
type slab struct {
	evs []trace.Event
}

// slabPool recycles slabs of one batch size, so the steady state of a
// pass allocates no event storage at all: the working set is the handful
// of slabs in flight between stages.
type slabPool struct {
	p sync.Pool
}

func newSlabPool(batch int) *slabPool {
	sp := &slabPool{}
	sp.p.New = func() any { return &slab{evs: make([]trace.Event, 0, batch)} }
	return sp
}

func (sp *slabPool) get() *slab { return sp.p.Get().(*slab) }

func (sp *slabPool) put(s *slab) {
	s.evs = s.evs[:0]
	sp.p.Put(s)
}

// fill decodes the rank's next batch of events into s, up to its
// capacity. It returns io.EOF (with an empty slab) once the rank is
// exhausted, and classifies a short batch exactly like Next would: a
// stream that ends while events are still owed is a truncation.
func (c *Cursor) fill(s *slab) error {
	n := min(cap(s.evs), c.remaining)
	if n == 0 {
		s.evs = s.evs[:0]
		return io.EOF
	}
	s.evs = s.evs[:n]
	m, err := c.d.DecodeBatch(s.evs)
	s.evs = s.evs[:m]
	c.remaining -= m
	if m < n {
		if err == nil || err == io.EOF {
			return io.ErrUnexpectedEOF
		}
		return err
	}
	return nil
}

// slabMsg carries one decoded slab downstream; a non-nil err means the
// decode failed after s's events (which are still valid).
type slabMsg struct {
	s   *slab
	err error
}

// decodeRank is the per-rank decode stage: it fills pooled slabs ahead
// of the merge and sends them over a bounded channel. It exits when the
// rank is exhausted (closing ch), after sending a decode error, or when
// stop closes (the engine quit early). All state arrives as arguments —
// the goroutine captures nothing.
func decodeRank(cur *Cursor, pool *slabPool, ch chan<- slabMsg, stop <-chan struct{}) {
	defer close(ch)
	for {
		s := pool.get()
		err := cur.fill(s)
		if err == io.EOF {
			pool.put(s)
			return
		}
		select {
		case ch <- slabMsg{s: s, err: err}:
		case <-stop:
			pool.put(s)
			return
		}
		if err != nil {
			return
		}
	}
}

// slabCursor drains a decode stage one event at a time, recycling each
// slab as it empties.
type slabCursor struct {
	ch   <-chan slabMsg
	pool *slabPool
	s    *slab
	pos  int
	err  error
}

// slabCursor starts a decode-ahead stage over rank's events. Closing
// stop releases the stage's goroutine if the caller quits before
// draining it.
func (s *Source) slabCursor(rank int, pool *slabPool, stop <-chan struct{}) *slabCursor {
	ch := make(chan slabMsg, 1)
	go decodeRank(s.Cursor(rank), pool, ch, stop)
	return &slabCursor{ch: ch, pool: pool}
}

// nextRef returns a pointer to the rank's next event, or io.EOF after
// the last one. The pointee lives in the current slab: it stays valid
// until the slab drains (at most cap(evs) further nextRef calls), which
// is exactly as long as the merge engine holds a rank's head.
func (c *slabCursor) nextRef() (*trace.Event, error) {
	for c.s == nil || c.pos == len(c.s.evs) {
		if c.s != nil {
			c.pool.put(c.s)
			c.s = nil
		}
		if c.err != nil {
			return nil, c.err
		}
		msg, ok := <-c.ch
		if !ok {
			return nil, io.EOF
		}
		c.s, c.pos, c.err = msg.s, 0, msg.err
	}
	ev := &c.s.evs[c.pos]
	c.pos++
	return ev, nil
}
