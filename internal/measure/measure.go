// Package measure implements the runtime measurement procedures of
// Section III of the paper: offset determination between distributed
// clocks using Cristian's probabilistic remote clock reading (Eq. 2),
// performed at program initialization and finalization as Scalasca does,
// and the message/collective latency micro-benchmarks of Table II.
package measure

import (
	"fmt"

	"tsync/internal/mpi"
	"tsync/internal/stats"
)

// Tags reserved for measurement traffic. They live in the ordinary tag
// space but measurement runs untraced, so they never appear in traces.
const (
	tagOffsetReq = 1 << 28
	tagOffsetRep = tagOffsetReq + 1
	tagPingPong  = tagOffsetReq + 2
	tagHopResult = tagOffsetReq + 3
)

// Offset is one worker's measured clock offset relative to the master
// (rank 0): master_time ≈ worker_time + Offset at the moment the worker's
// clock read WorkerTime.
type Offset struct {
	Rank       int
	WorkerTime float64 // t0: the worker's clock value during the exchange
	Offset     float64 // o = t1 + (t2-t1)/2 - t0 (Eq. 2)
	RTT        float64 // round-trip time of the selected (minimal) probe
}

// Offsets measures the offset between rank 0 (master) and every other rank
// using reps ping-pong probes per worker, keeping the probe with the
// smallest round trip ("the process must be repeated several times to
// minimize the delay", Section III). Every rank must call it at the same
// point of the program; every rank returns the full table. Measurement
// traffic is never traced.
func Offsets(r *mpi.Rank, reps int) ([]Offset, error) {
	if reps <= 0 {
		return nil, fmt.Errorf("measure: reps must be positive, got %d", reps)
	}
	wasTracing := r.Tracing()
	r.SetTracing(false)
	defer r.SetTracing(wasTracing)

	n := r.Size()
	table := make([]Offset, n)
	if r.Rank() == 0 {
		table[0] = Offset{Rank: 0, WorkerTime: r.Wtime(), Offset: 0}
		for w := 1; w < n; w++ {
			best := Offset{Rank: w, RTT: -1}
			for rep := 0; rep < reps; rep++ {
				t1 := r.Wtime()
				r.Send(w, tagOffsetReq, 8, nil)
				m := r.Recv(w, tagOffsetRep)
				t2 := r.Wtime()
				t0, ok := m.Data.(float64)
				if !ok {
					return nil, fmt.Errorf("measure: worker %d replied with %T", w, m.Data)
				}
				rtt := t2 - t1
				if best.RTT < 0 || rtt < best.RTT {
					best = Offset{
						Rank:       w,
						WorkerTime: t0,
						Offset:     t1 + rtt/2 - t0, // Eq. 2
						RTT:        rtt,
					}
				}
			}
			table[w] = best
		}
		// distribute so every rank can apply corrections locally
		r.Bcast(0, 16*n, table)
	} else {
		for rep := 0; rep < reps; rep++ {
			r.Recv(0, tagOffsetReq)
			t0 := r.Wtime()
			r.Send(0, tagOffsetRep, 8, t0)
		}
		got := r.Bcast(0, 16*n, nil)
		t, ok := got.([]Offset)
		if !ok {
			return nil, fmt.Errorf("measure: broadcast offset table has type %T", got)
		}
		table = t
	}
	return table, nil
}

// LatencyResult summarizes a latency micro-benchmark like a row of
// Table II.
type LatencyResult struct {
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	N      int
}

// PingPong measures the one-way message latency between rank 0 and rank 1
// with reps round trips of the given message size, as the Table II message
// rows. Both ranks must call it; rank 0 returns the result, others return
// a zero value. Uses the rank's own clock (as real benchmarks must), whose
// drift is negligible over a microsecond round trip.
func PingPong(r *mpi.Rank, reps, bytes int) (LatencyResult, error) {
	if r.Size() < 2 {
		return LatencyResult{}, fmt.Errorf("measure: PingPong needs at least 2 ranks")
	}
	if reps <= 0 {
		return LatencyResult{}, fmt.Errorf("measure: reps must be positive")
	}
	wasTracing := r.Tracing()
	r.SetTracing(false)
	defer r.SetTracing(wasTracing)

	var acc stats.Online
	switch r.Rank() {
	case 0:
		for i := 0; i < reps; i++ {
			t1 := r.Wtime()
			r.Send(1, tagPingPong, bytes, nil)
			r.Recv(1, tagPingPong)
			t2 := r.Wtime()
			acc.Add((t2 - t1) / 2)
		}
	case 1:
		for i := 0; i < reps; i++ {
			r.Recv(0, tagPingPong)
			r.Send(0, tagPingPong, bytes, nil)
		}
	}
	return LatencyResult{Mean: acc.Mean(), StdDev: acc.StdDev(), Min: acc.Min(), Max: acc.Max(), N: acc.N()}, nil
}

// Collective measures the latency of an allreduce across all ranks with
// reps repetitions, as the Table II collective row. All ranks must call
// it; rank 0 returns the result.
func Collective(r *mpi.Rank, reps, bytes int) (LatencyResult, error) {
	if reps <= 0 {
		return LatencyResult{}, fmt.Errorf("measure: reps must be positive")
	}
	wasTracing := r.Tracing()
	r.SetTracing(false)
	defer r.SetTracing(wasTracing)

	var acc stats.Online
	for i := 0; i < reps; i++ {
		r.Barrier()
		t1 := r.Wtime()
		r.Allreduce(bytes, nil, nil)
		t2 := r.Wtime()
		if r.Rank() == 0 {
			acc.Add(t2 - t1)
		}
	}
	return LatencyResult{Mean: acc.Mean(), StdDev: acc.StdDev(), Min: acc.Min(), Max: acc.Max(), N: acc.N()}, nil
}

// OffsetsTree measures offsets like Offsets, but indirectly along a
// binomial tree instead of a master-to-all star: each rank probes only its
// tree parent, and the master composes the per-hop offsets into global
// ones. This is the effort-limiting indirect scheme of Doleschal et al.
// (the paper's reference [17]) — the master exchanges O(log n) message
// pairs per probe round instead of O(n), at the price of error
// accumulation along the hops. Every rank returns the composed table.
func OffsetsTree(r *mpi.Rank, reps int) ([]Offset, error) {
	if reps <= 0 {
		return nil, fmt.Errorf("measure: reps must be positive, got %d", reps)
	}
	wasTracing := r.Tracing()
	r.SetTracing(false)
	defer r.SetTracing(wasTracing)

	n := r.Size()
	parent := func(k int) int { return k &^ (k & -k) } // clear lowest set bit
	// hop measurement between parent(k) and k, sequentially by child rank
	// so a parent never serves two children at once
	var hop Offset // this rank's own hop result (as child)
	for k := 1; k < n; k++ {
		p := parent(k)
		switch r.Rank() {
		case p:
			best := Offset{Rank: k, RTT: -1}
			for rep := 0; rep < reps; rep++ {
				t1 := r.Wtime()
				r.Send(k, tagOffsetReq, 8, nil)
				m := r.Recv(k, tagOffsetRep)
				t2 := r.Wtime()
				t0, ok := m.Data.(float64)
				if !ok {
					return nil, fmt.Errorf("measure: child %d replied with %T", k, m.Data)
				}
				rtt := t2 - t1
				if best.RTT < 0 || rtt < best.RTT {
					best = Offset{Rank: k, WorkerTime: t0, Offset: t1 + rtt/2 - t0, RTT: rtt}
				}
			}
			// forward the hop result to the child so it can contribute
			// its own WorkerTime context, then to the root via Gather
			r.Send(k, tagHopResult, 32, best)
		case k:
			for rep := 0; rep < reps; rep++ {
				r.Recv(p, tagOffsetReq)
				t0 := r.Wtime()
				r.Send(p, tagOffsetRep, 8, t0)
			}
			m := r.Recv(p, tagHopResult)
			var ok bool
			hop, ok = m.Data.(Offset)
			if !ok {
				return nil, fmt.Errorf("measure: parent %d forwarded %T", p, m.Data)
			}
		}
	}
	// gather per-hop offsets at the root and compose along tree paths
	gathered := r.Gather(0, 32, hop)
	table := make([]Offset, n)
	if r.Rank() == 0 {
		table[0] = Offset{Rank: 0, WorkerTime: r.Wtime(), Offset: 0}
		for k := 1; k < n; k++ {
			h, ok := gathered[k].(Offset)
			if !ok {
				return nil, fmt.Errorf("measure: gathered hop %d has type %T", k, gathered[k])
			}
			// parent(k) < k, so its composed entry already exists:
			// (parent - child) + (master - parent) = master - child
			table[k] = Offset{
				Rank:       k,
				WorkerTime: h.WorkerTime,
				Offset:     h.Offset + table[parent(k)].Offset,
				RTT:        h.RTT,
			}
		}
		r.Bcast(0, 32*n, table)
		return table, nil
	}
	got := r.Bcast(0, 32*n, nil)
	t, ok := got.([]Offset)
	if !ok {
		return nil, fmt.Errorf("measure: broadcast offset table has type %T", got)
	}
	return t, nil
}

// LatencyMatrix measures the one-way latency between every ordered rank
// pair with reps ping-pongs each (row = initiator, column = responder).
// On torus networks the matrix exposes the hop-distance gradient that a
// single Table II row averages away. All ranks must call it; every rank
// returns the full matrix.
func LatencyMatrix(r *mpi.Rank, reps, bytes int) ([][]float64, error) {
	if reps <= 0 {
		return nil, fmt.Errorf("measure: reps must be positive")
	}
	wasTracing := r.Tracing()
	r.SetTracing(false)
	defer r.SetTracing(wasTracing)

	n := r.Size()
	mine := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			switch r.Rank() {
			case i:
				var acc stats.Online
				// the first exchange absorbs the phase skew of the
				// responder still finishing earlier pairs; warm up
				for rep := 0; rep < reps+1; rep++ {
					t1 := r.Wtime()
					r.Send(j, tagPingPong, bytes, nil)
					r.Recv(j, tagPingPong)
					t2 := r.Wtime()
					if rep > 0 {
						acc.Add((t2 - t1) / 2)
					}
				}
				mine[j] = acc.Mean()
			case j:
				for rep := 0; rep < reps+1; rep++ {
					r.Recv(i, tagPingPong)
					r.Send(i, tagPingPong, bytes, nil)
				}
			}
		}
	}
	rows := r.Gather(0, 8*n, mine)
	matrix := make([][]float64, n)
	if r.Rank() == 0 {
		for i, raw := range rows {
			row, ok := raw.([]float64)
			if !ok {
				return nil, fmt.Errorf("measure: gathered row %d has type %T", i, raw)
			}
			matrix[i] = row
		}
		r.Bcast(0, 8*n*n, matrix)
		return matrix, nil
	}
	got := r.Bcast(0, 8*n*n, nil)
	m, ok := got.([][]float64)
	if !ok {
		return nil, fmt.Errorf("measure: broadcast matrix has type %T", got)
	}
	return m, nil
}
