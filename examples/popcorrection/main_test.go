package main

// Run the POP correction study end to end at a reduced scale under
// go test ./... so the example keeps compiling and running as the
// experiment drivers evolve.

import (
	"bytes"
	"strings"
	"testing"

	"tsync/internal/clock"
	"tsync/internal/experiments"
	"tsync/internal/topology"
)

func TestPopcorrectionRuns(t *testing.T) {
	cfg := experiments.AppViolationsConfig{
		App:     experiments.AppPOP,
		Machine: topology.Xeon(),
		Timer:   clock.TSC,
		Ranks:   8,
		Reps:    1,
		Seed:    11,
		Scale:   0.05,
	}
	var out bytes.Buffer
	if err := run(&out, cfg); err != nil {
		t.Fatalf("popcorrection: %v", err)
	}
	for _, want := range []string{
		"after linear interpolation",
		"comparing all correction methods",
		"violations left",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output lacks %q:\n%s", want, out.String())
		}
	}
}
