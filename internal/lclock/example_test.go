package lclock_test

import (
	"fmt"

	"tsync/internal/lclock"
	"tsync/internal/trace"
)

// ExampleVectors derives Fidge/Mattern vector clocks from a trace and uses
// them as the happened-before oracle, independent of the (possibly lying)
// timestamps.
func ExampleVectors() {
	tr := &trace.Trace{Procs: []trace.Proc{
		{Rank: 0, Events: []trace.Event{
			{Kind: trace.Send, Time: 1, True: 1, Partner: 1},
		}},
		{Rank: 1, Events: []trace.Event{
			// the timestamp claims 0.5, but the message edge says the
			// receive happened after the send
			{Kind: trace.Recv, Time: 0.5, True: 1.1, Partner: 0},
		}},
	}}
	vc, err := lclock.Vectors(tr)
	if err != nil {
		panic(err)
	}
	send := lclock.EventRef{Rank: 0, Idx: 0}
	recv := lclock.EventRef{Rank: 1, Idx: 0}
	fmt.Println("send happened before recv:", lclock.HappenedBefore(vc, send, recv))
	bad, _ := lclock.CheckOrder(tr, 0)
	fmt.Println("timestamp order violations:", len(bad))
	// Output:
	// send happened before recv: true
	// timestamp order violations: 1
}
