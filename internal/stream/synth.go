package stream

import (
	"fmt"
	"io"
	"math"

	"tsync/internal/measure"
	"tsync/internal/topology"
	"tsync/internal/trace"
	"tsync/internal/xrand"
)

// SynthSpec parameterizes the synthetic ring workload.
type SynthSpec struct {
	Ranks int
	// Steps is the number of ring steps; each contributes four events per
	// rank (Enter, Send to the right neighbor, Recv from the left one,
	// Exit).
	Steps int
	// CollEvery inserts a collective round (op and root rotate) after
	// every n-th step; zero disables collectives.
	CollEvery int
	Seed      uint64
	// Version selects the output codec (trace.Version1 or
	// trace.Version2); zero means v1, matching the historical bytes.
	Version int
	// FrameEvents sets the v2 frame size; zero selects the default.
	FrameEvents int
	// DistortClock, when set, post-processes every clock reading: it
	// receives the rank, the oracle time t, and the clean clock value c,
	// and returns the value actually recorded. Fault-injection tests use
	// it to model NTP steps, counter resets, and frequency jumps. It
	// distorts the offset-table samples too — a real measurement phase
	// would read the same broken clock.
	DistortClock func(rank int, t, c float64) float64
}

// Synth streams a deterministic synthetic trace to w in O(ranks) memory:
// a ring of point-to-point messages with optional collective rounds,
// timestamped by per-rank clocks with constant drift plus a small
// sinusoidal modulation (the paper's non-constant drift model). Rank 0
// keeps the identity clock. It returns exact initialization and
// finalization offset tables (sampled from the closed-form clocks), so
// base corrections have the same inputs the measurement phase would
// produce. The generated schedule strictly increases oracle time along
// every happened-before edge, satisfying the streaming engine's ordering
// contract by construction.
func Synth(spec SynthSpec, w io.Writer) (init, fin []measure.Offset, err error) {
	if spec.Ranks < 2 {
		return nil, nil, fmt.Errorf("stream: Synth needs at least 2 ranks, got %d", spec.Ranks)
	}
	if spec.Steps < 1 {
		return nil, nil, fmt.Errorf("stream: Synth needs at least 1 step, got %d", spec.Steps)
	}
	nRanks, steps := spec.Ranks, spec.Steps
	rounds := 0
	if spec.CollEvery > 0 {
		rounds = steps / spec.CollEvery
	}
	const (
		stepDur = 1e-3  // one ring step (or collective round) of oracle time
		eps     = 1e-6  // per-rank skew within a step
		compute = 50e-6 // local work between Enter and Send / Recv and Exit
	)

	type clockParam struct{ b, a, amp, om, ph float64 }
	params := make([]clockParam, nRanks)
	for r := 1; r < nRanks; r++ {
		rng := xrand.NewSource(xrand.SeedAt(spec.Seed, uint64(r)))
		params[r] = clockParam{
			b:   rng.Uniform(-5e-5, 5e-5),
			a:   rng.Uniform(-1e-3, 1e-3),
			amp: rng.Uniform(0, 2e-6),
			om:  2 * math.Pi / rng.Uniform(5, 20),
			ph:  rng.Uniform(0, 2*math.Pi),
		}
	}
	clock := func(r int, t float64) float64 {
		p := params[r]
		c := (1+p.b)*t + p.a + p.amp*math.Sin(p.om*t+p.ph)
		if spec.DistortClock != nil {
			c = spec.DistortClock(r, t, c)
		}
		return c
	}

	ops := make([]trace.CollOp, rounds)
	opRng := xrand.NewSource(xrand.SeedAt(spec.Seed, 1<<20))
	allOps := []trace.CollOp{
		trace.OpBarrier, trace.OpBcast, trace.OpReduce, trace.OpAllreduce,
		trace.OpGather, trace.OpScatter, trace.OpAllgather, trace.OpAlltoall,
	}
	for i := range ops {
		ops[i] = allOps[opRng.Intn(len(allOps))]
	}

	ew, err := trace.NewEventWriterOpts(w, trace.Header{
		Machine:    fmt.Sprintf("synth[%d]", nRanks),
		Timer:      "synth-sin",
		MinLatency: [4]float64{0, 1e-6, 2e-6, 5e-6},
		Regions:    []string{"ring"},
		ProcCount:  nRanks,
	}, trace.WriterOptions{Version: spec.Version, FrameEvents: spec.FrameEvents})
	if err != nil {
		return nil, nil, err
	}
	slots := 0
	for r := 0; r < nRanks; r++ {
		ph := trace.ProcHeader{
			Rank:       r,
			Core:       topology.CoreID{Node: r},
			Clock:      "synth-sin",
			EventCount: steps*4 + rounds*2,
		}
		if err := ew.BeginProc(ph); err != nil {
			return nil, nil, err
		}
		emit := func(ev trace.Event, t float64) error {
			ev.True = t
			ev.SetTime(clock(r, t))
			return ew.Write(&ev)
		}
		slot, round := 0, 0
		to := int32((r + 1) % nRanks)
		from := int32((r - 1 + nRanks) % nRanks)
		for s := 0; s < steps; s++ {
			base := float64(slot) * stepDur
			rs := float64(r) * eps
			if err := emit(trace.Event{Kind: trace.Enter, Region: 0}, base+rs); err != nil {
				return nil, nil, err
			}
			if err := emit(trace.Event{Kind: trace.Send, Partner: to, Bytes: 1 << 10}, base+rs+compute); err != nil {
				return nil, nil, err
			}
			if err := emit(trace.Event{Kind: trace.Recv, Partner: from, Bytes: 1 << 10}, base+stepDur/2+rs); err != nil {
				return nil, nil, err
			}
			if err := emit(trace.Event{Kind: trace.Exit, Region: 0}, base+stepDur/2+rs+compute); err != nil {
				return nil, nil, err
			}
			slot++
			if spec.CollEvery > 0 && (s+1)%spec.CollEvery == 0 && round < rounds {
				cb := float64(slot) * stepDur
				root := round % nRanks
				ev := trace.Event{
					Op: ops[round], Instance: int32(round), Root: int32(root), Bytes: 1 << 9,
				}
				ev.Kind = trace.CollBegin
				// the root begins first, so rooted 1-to-N edges strictly
				// increase oracle time
				if err := emit(ev, cb+float64((r-root+nRanks)%nRanks)*eps); err != nil {
					return nil, nil, err
				}
				ev.Kind = trace.CollEnd
				if err := emit(ev, cb+stepDur/2+rs); err != nil {
					return nil, nil, err
				}
				slot++
				round++
			}
		}
		slots = slot
	}
	if err := ew.Close(); err != nil {
		return nil, nil, err
	}

	tInit := -1e-2
	tFin := float64(slots)*stepDur + 1e-2
	init = make([]measure.Offset, nRanks)
	fin = make([]measure.Offset, nRanks)
	for r := 0; r < nRanks; r++ {
		wi, wf := clock(r, tInit), clock(r, tFin)
		init[r] = measure.Offset{Rank: r, WorkerTime: wi, Offset: clock(0, tInit) - wi, RTT: 2e-6}
		fin[r] = measure.Offset{Rank: r, WorkerTime: wf, Offset: clock(0, tFin) - wf, RTT: 2e-6}
	}
	return init, fin, nil
}
