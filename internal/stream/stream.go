// Package stream runs the paper's postmortem analyses over trace files
// without materializing them: events are decoded incrementally
// (trace.EventReader), merged across ranks in oracle-time order, and the
// per-rank corrections — offset alignment and linear interpolation
// (Eq. 2/3), clock-condition violation scanning (Eq. 1), Lamport
// schedules, and the controlled logical clock with its forward and
// backward amortization — are computed online. Memory is bounded by the
// reorder window (in-flight messages, open collective instances, and the
// CLC backward-amortization look-back), not by the trace length;
// finalized per-rank results spill to temporary files and are assembled
// into the output trace rank-major.
//
// The streaming path is pinned to the in-memory one (internal/core,
// internal/clc, internal/interp, internal/analysis) by differential
// property tests: output event bytes and experiment checksums are
// required to be bit-identical. That works because both paths share one
// codec (trace.EventWriter), the same interp mapping calls, and because
// the CLC forward recurrence is a max-based fixpoint whose value is
// independent of the topological processing order.
//
// Ordering contract: the engine processes events in merged (True, rank)
// order. The simulator guarantees strictly increasing oracle time along
// every happened-before edge, which makes that merge a topological order
// of the happened-before graph. Traces violating it (which the simulator
// never produces) fail with an explicit error instead of silently
// computing garbage; the legacy in-memory path remains available for
// them.
package stream

import (
	"errors"
	"fmt"
)

// DefaultWindow is the per-rank reorder-window capacity (in pending
// items) used when Options.Window is zero: 64Ki entries, a few MiB per
// rank in the worst case.
const DefaultWindow = 1 << 16

// DefaultBatch is the slab size (events per batch) used when
// Options.Batch is zero: large enough to amortize per-slab channel and
// pool traffic to noise, small enough that a rank's in-flight slabs stay
// a few hundred KiB.
const DefaultBatch = 4096

// ErrUnsupported reports a request the streaming path cannot serve
// (error-estimation bases, shared-memory CLC, clock domains, JSON
// traces). Callers fall back to the in-memory path.
var ErrUnsupported = errors.New("stream: unsupported by the streaming path")

// ErrWindowExceeded reports that a rank's pending state outgrew the
// reorder window under PolicyError: typically a message whose send
// outlives the window before its receive shows up, or a collective
// instance held open across too many events.
var ErrWindowExceeded = errors.New("stream: reorder window exceeded")

// Policy selects what happens when a rank's pending state outgrows the
// window.
type Policy int

const (
	// PolicySpill releases the bound: pending state grows past the
	// window (the overflow is recorded in Stats) and the run completes.
	// Finalized results always stream to per-rank temp files, so only
	// the pending set itself grows.
	PolicySpill Policy = iota
	// PolicyError fails fast with ErrWindowExceeded, keeping the memory
	// guarantee hard.
	PolicyError
)

// String names the policy (flag value spelling).
func (p Policy) String() string {
	switch p {
	case PolicySpill:
		return "spill"
	case PolicyError:
		return "error"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// ParsePolicy maps a flag spelling onto a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "spill":
		return PolicySpill, nil
	case "error":
		return PolicyError, nil
	}
	return 0, fmt.Errorf("stream: unknown window policy %q (want spill or error)", s) //tsync:rawerr — flag-spelling validation, not trace bytes; no decode sentinel applies
}

// Options tune the streaming engine.
type Options struct {
	// Window caps each rank's pending items: unmatched sends, open
	// collective-instance records, and backward-amortization look-back
	// entries. Zero selects DefaultWindow.
	Window int
	// Policy selects spill-or-error behavior at the window boundary.
	Policy Policy
	// Workers bounds the per-rank fan-out of the output assembly pass
	// (event re-encoding); values below 1 mean serial. The merge engine
	// itself is sequential by design — determinism is its contract.
	Workers int
	// Batch is the slab size of the staged pipeline: how many events
	// flow between the decode, merge, and encode stages per hand-off.
	// Zero selects DefaultBatch. Batch only affects wall time, never
	// output: the differential suite runs across batch sizes.
	Batch int
	// Shards splits the k-way merge into a two-level tree: contiguous
	// rank groups are merged concurrently by per-shard workers whose
	// sorted streams feed a root merge. Zero selects an automatic count
	// from the rank count (1 — the flat single-heap merge — below
	// autoShardRanks ranks); 1 forces the flat merge. Like Batch, Shards
	// only affects wall time and memory shape, never output: the
	// two-level merge is bit-identical to the flat one (see shard.go and
	// DESIGN.md §12), and the differential suite runs across shard
	// counts.
	Shards int
	// Salvage makes the engine tolerate the happened-before breakage a
	// salvaged source implies — receives whose send was lost, collective
	// ends whose begin was lost, sends whose receive never arrives — and
	// count them in Stats.Loss instead of failing the run. It is implied
	// whenever the source itself recovered from corruption; setting it on
	// an intact source changes nothing (the tolerated conditions cannot
	// occur there).
	Salvage bool
	// SpillFS overrides the filesystem used for spill and assembly temp
	// files; nil selects OS temp directories. Tests inject fault-heavy
	// implementations here.
	SpillFS SpillFS
}

// Normalize clamps every tunable to its usable range: non-positive
// Window and Batch select their defaults, non-positive Workers means
// serial, negative Shards means automatic. All entry points normalize
// exactly once, up front, so the rest of the package can assume sane
// values instead of re-checking per use. Shards stays zero here when
// automatic — the concrete count depends on the source's rank count and
// is resolved per walk by shardCount.
func (o Options) Normalize() Options {
	if o.Window <= 0 {
		o.Window = DefaultWindow
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.Batch <= 0 {
		o.Batch = DefaultBatch
	}
	if o.Shards < 0 {
		o.Shards = 0
	}
	return o
}

// RankLoss records what salvage could not preserve for one rank: the
// decode-side damage (events lost to corruption, bytes skipped while
// resynchronizing) and the engine-side fallout (happened-before edges
// that had to be dropped because one endpoint was lost).
type RankLoss struct {
	Rank int
	// LostEvents counts events the rank's intact header declared but the
	// decode could not deliver. When the header itself was lost the
	// count is unknowable: Unknown is set instead.
	LostEvents int64
	// Unknown reports loss that cannot be counted (a destroyed process
	// header took its declared event count with it).
	Unknown bool
	// SkippedBytes and Incidents attribute the resync scans that
	// happened while this rank's section was being read.
	SkippedBytes int64
	Incidents    int
	// DroppedSends counts sends whose matching receive never arrived
	// (lost in a gap); their out-edge was abandoned at end of trace.
	DroppedSends int64
	// OrphanRecvs counts receives processed without a plausible matching
	// send; they were kept as local events with no incoming edge.
	OrphanRecvs int64
	// BrokenCollectives counts collective participations that could not
	// be completed normally: ends without begins, begins without ends,
	// duplicate or inconsistent records.
	BrokenCollectives int64
}

// LossPct returns the rank's event loss as a percentage of what the
// trace should have held — lost plus the retained count the caller
// observed — and whether that figure is meaningful. When the rank's
// header was destroyed (Unknown: a placeholder rank with zero retained
// events and an uncountable loss) or nothing was expected at all, there
// is no denominator: reports must print "?" rather than the NaN/Inf a
// naive division would produce, so ok is false and pct is 0.
func (l RankLoss) LossPct(retained int64) (pct float64, ok bool) {
	total := retained + l.LostEvents
	if l.Unknown || total <= 0 {
		return 0, false
	}
	return 100 * float64(l.LostEvents) / float64(total), true
}

// Any reports whether the record registers any loss at all.
func (l RankLoss) Any() bool {
	return l.LostEvents != 0 || l.Unknown || l.SkippedBytes != 0 || l.Incidents != 0 ||
		l.DroppedSends != 0 || l.OrphanRecvs != 0 || l.BrokenCollectives != 0
}

// Stats reports what a streaming run buffered and processed.
type Stats struct {
	// Events is the total number of events processed per pass (the
	// maximum over passes, so it equals the trace's event count).
	Events int64
	// MaxPending is the high-water mark of any single rank's pending
	// items.
	MaxPending int
	// SpilledEvents counts pending-item insertions beyond the window
	// under PolicySpill (zero means the window was never exceeded).
	SpilledEvents int64
	// Loss holds one record per rank when the run salvaged a damaged
	// trace (nil for clean strict runs).
	Loss []RankLoss
}

// accounting enforces the window policy over per-rank pending items.
type accounting struct {
	opt     Options
	stats   *Stats
	pending []int
}

func newAccounting(ranks int, opt Options, stats *Stats) *accounting {
	return &accounting{opt: opt, stats: stats, pending: make([]int, ranks)}
}

// add charges n pending items (n may be negative) to rank and applies
// the window policy.
func (a *accounting) add(rank, n int) error {
	a.pending[rank] += n
	p := a.pending[rank]
	if p > a.stats.MaxPending {
		a.stats.MaxPending = p
	}
	if n > 0 && p > a.opt.Window {
		if a.opt.Policy == PolicyError {
			return fmt.Errorf("%w: rank %d holds %d pending items (window %d)", ErrWindowExceeded, rank, p, a.opt.Window)
		}
		a.stats.SpilledEvents += int64(n)
	}
	return nil
}
