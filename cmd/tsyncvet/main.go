// Command tsyncvet runs the repository's clock-correctness analyzers
// (wallclock, floateq, tsmutate, locked — see internal/lint) together
// with the stock go/analysis vet passes.
//
// It is both a standalone driver and a `go vet` vettool:
//
//	go run ./cmd/tsyncvet ./...          # lint the whole module
//	go vet -vettool=$(which tsyncvet) ./...
//
// Given package patterns, tsyncvet re-executes itself through
// `go vet -vettool`, which hands each package to the unitchecker protocol
// with full type information and cross-package facts from the standard
// build system. (The usual multichecker driver lives in parts of x/tools
// that the Go distribution does not vendor; the unitchecker route needs
// only what `go vet` itself ships with, and behaves identically in CI.)
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"tsync/internal/lint/suite"
)

func main() {
	args := os.Args[1:]
	if isVettoolInvocation(args) {
		unitchecker.Main(suite.Analyzers()...) // exits
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(drive(args))
}

// isVettoolInvocation reports whether the process was started by the go
// command's vet machinery rather than by a human: every argument is a
// flag (-V=full, -flags, analyzer flags) or a unitchecker *.cfg file.
// Human invocations carry at least one package pattern.
func isVettoolInvocation(args []string) bool {
	if len(args) == 0 {
		return false
	}
	for _, a := range args {
		if !strings.HasPrefix(a, "-") && !strings.HasSuffix(a, ".cfg") {
			return false
		}
	}
	return true
}

// drive re-runs the analysis through `go vet -vettool=<self> patterns`,
// streaming output through and propagating the exit code.
func drive(patterns []string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "tsyncvet: cannot locate own binary: %v\n", err)
		return 1
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "tsyncvet: running go vet: %v\n", err)
		return 1
	}
	return 0
}
