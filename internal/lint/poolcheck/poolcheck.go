// Package poolcheck defines an analyzer for the slab-recycling contract
// PR 4 established in the streaming hot path: once a slab goes back into
// its sync.Pool, the caller no longer owns it.
//
// The batched pipeline keeps allocation at zero by recycling
// fixed-capacity event slabs through sync.Pool. That discipline has a
// sharp edge: after pool.Put(s), another goroutine's Get may already be
// writing into s, so a read of s is a data race the race detector only
// sees on schedules where the recycled slab is actually handed out —
// i.e. rarely in tests, reliably in production. A double Put is worse:
// the same slab gets handed to two goroutines at once.
//
// The analyzer performs a function-local reachability analysis on the
// control-flow graph (golang.org/x/tools/go/cfg): from every
// pool.Put(x) — the stdlib method, or a Put/put-named method on a type
// wrapping a sync.Pool, with x a plain variable — it scans every path
// forward and reports uses of x that can execute after the Put. A
// reassignment of x (x = pool.Get(), x := ...) kills the path, which is
// what makes the idiomatic get→fill→put loop clean: the back edge leads
// to the Get that re-establishes ownership.
//
// Reported:
//
//   - any read of x reachable after Put(x) without an intervening
//     reassignment (use after free, pool flavour);
//   - a second Put(x) reachable the same way (double free).
//
// The analysis is intraprocedural and ignores aliasing: it will not see
// a use through a second variable pointing at the same slab, and it may
// flag a use that is in fact unreachable. For the rare justified case
// a "tsync:reuse" comment on the flagged line names why the slab is
// still owned (e.g. the Put target pool is private to this goroutine).
package poolcheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/cfg"

	"tsync/internal/lint"
)

const doc = `flag slab use-after-Put and double-Put on sync.Pool-backed pools

After pool.Put(s) the slab may already belong to another goroutine; any
reachable read of s, or a second Put, is reported unless a reassignment
re-establishes ownership first.`

// Analyzer is the poolcheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "poolcheck",
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// directive is the per-line suppression marker.
const directive = "tsync:reuse"

func run(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		var body *ast.BlockStmt
		switch n := n.(type) {
		case *ast.FuncDecl:
			body = n.Body
		case *ast.FuncLit:
			body = n.Body
		}
		if body == nil {
			return
		}
		g := cfg.New(body, func(*ast.CallExpr) bool { return true })
		checkCFG(pass, g)
	})
	return nil, nil
}

// putCall matches stmt as a statement whose top-level expression is a
// pool Put of a plain variable, returning that variable.
func putCall(pass *analysis.Pass, stmt ast.Node) *types.Var {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return nil
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if sel.Sel.Name != "Put" && sel.Sel.Name != "put" {
		return nil
	}
	if !poolBacked(pass.TypesInfo.TypeOf(sel.X)) {
		return nil
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := pass.TypesInfo.ObjectOf(id).(*types.Var)
	return v
}

// poolBacked reports whether t is sync.Pool, *sync.Pool, or a (pointer
// to a) struct with a sync.Pool field — the wrapper shape slab pools use.
func poolBacked(t types.Type) bool {
	if t == nil {
		return false
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	if isSyncPool(t) {
		return true
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isSyncPool(types.Unalias(st.Field(i).Type())) {
			return true
		}
	}
	return false
}

func isSyncPool(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Pool" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// checkCFG scans each block for Put calls and walks the paths after them.
func checkCFG(pass *analysis.Pass, g *cfg.CFG) {
	for _, b := range g.Blocks {
		for i, node := range b.Nodes {
			v := putCall(pass, node)
			if v == nil {
				continue
			}
			w := &walker{pass: pass, v: v, visited: map[*cfg.Block]bool{}}
			// rest of this block after the Put, then all successors
			if w.scanNodes(b.Nodes[i+1:]) {
				continue
			}
			for _, succ := range b.Succs {
				if w.scanBlock(succ) {
					break
				}
			}
		}
	}
}

// walker tracks one Put's forward scan.
type walker struct {
	pass    *analysis.Pass
	v       *types.Var
	visited map[*cfg.Block]bool
}

// scanBlock walks a block's nodes in order; returns true when the scan
// is finished (a diagnostic was reported — one per Put keeps the output
// readable).
func (w *walker) scanBlock(b *cfg.Block) bool {
	if w.visited[b] {
		return false
	}
	w.visited[b] = true
	if done := w.scanNodes(b.Nodes); done {
		return true
	}
	for _, succ := range b.Succs {
		if w.scanBlock(succ) {
			return true
		}
	}
	return false
}

// scanNodes visits statements in execution order. It returns true when
// either a diagnostic was reported or the variable was reassigned (the
// path is dead for this Put). A false return means the scan continues
// into successors.
func (w *walker) scanNodes(nodes []ast.Node) bool {
	for _, n := range nodes {
		if v := putCall(w.pass, n); v == w.v {
			if !lint.HasLineDirective(w.pass, n.Pos(), directive) {
				w.pass.Reportf(n.Pos(), "second Put of %q reachable after an earlier Put: the slab would be handed out twice; reassign (pool.Get) before re-Putting or annotate the line with a tsync:reuse comment", w.v.Name())
			}
			return true
		}
		if use := w.findUse(n); use != nil {
			if !lint.HasLineDirective(w.pass, use.Pos(), directive) {
				w.pass.Reportf(use.Pos(), "use of %q after it was returned to its pool: another goroutine's Get may already own it; use the value before Put, re-Get, or annotate the line with a tsync:reuse comment", w.v.Name())
			}
			return true
		}
		if w.kills(n) {
			return true
		}
	}
	return false
}

// findUse returns the first read of w.v inside n, ignoring identifiers
// that are pure reassignment targets.
func (w *walker) findUse(n ast.Node) *ast.Ident {
	var use *ast.Ident
	ast.Inspect(n, func(m ast.Node) bool {
		if use != nil {
			return false
		}
		if as, ok := m.(*ast.AssignStmt); ok {
			// visit RHS fully; skip LHS idents that are w.v itself
			for _, rhs := range as.Rhs {
				if u := w.findUseExpr(rhs); u != nil {
					use = u
					return false
				}
			}
			for _, lhs := range as.Lhs {
				// a write through v (v.f = x, v[i] = x) is still a use of
				// the freed slab; only the plain `v = ...` target is not
				if _, plain := ast.Unparen(lhs).(*ast.Ident); plain {
					continue
				}
				if u := w.findUseExpr(lhs); u != nil {
					use = u
					return false
				}
			}
			return false
		}
		if id, ok := m.(*ast.Ident); ok {
			if v, _ := w.pass.TypesInfo.ObjectOf(id).(*types.Var); v == w.v {
				use = id
			}
		}
		return use == nil
	})
	return use
}

// findUseExpr is findUse over a sub-expression.
func (w *walker) findUseExpr(e ast.Expr) *ast.Ident {
	var use *ast.Ident
	ast.Inspect(e, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if v, _ := w.pass.TypesInfo.ObjectOf(id).(*types.Var); v == w.v {
				use = id
			}
		}
		return use == nil
	})
	return use
}

// kills reports whether n reassigns w.v (plain `v = ...` or `v := ...`),
// re-establishing ownership on this path.
func (w *walker) kills(n ast.Node) bool {
	as, ok := n.(*ast.AssignStmt)
	if !ok || (as.Tok != token.ASSIGN && as.Tok != token.DEFINE) {
		return false
	}
	for _, lhs := range as.Lhs {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			if v, _ := w.pass.TypesInfo.ObjectOf(id).(*types.Var); v == w.v {
				return true
			}
		}
	}
	return false
}
