package stream

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync"

	"tsync/internal/interp"
	"tsync/internal/trace"
)

// timeMapper produces the pipeline's current timestamp for an event. The
// engine and the assembly/distortion passes consume events of each rank
// strictly in order, so mappers may be sequential readers.
type timeMapper interface {
	// mapTime returns the mapped timestamp of rank's idx-th event.
	mapTime(rank, idx int, ev *trace.Event) (float64, error)
}

// identityMapper keeps raw local timestamps (BaseNone).
type identityMapper struct{}

func (identityMapper) mapTime(_, _ int, ev *trace.Event) (float64, error) { return ev.Time, nil }

// corrMapper applies an interp correction through a monotone cursor:
// every pass feeds each rank's events in file order, whose local times
// are (in practice) nondecreasing, so the piece lookup is amortized O(1)
// instead of a binary search per event. The cursor falls back to the
// exact search whenever a time regresses — including the restart between
// passes that share one mapper — so its values are bit-identical to the
// in-memory Correction.Apply on every input. Concurrent per-rank use
// (assembleParallel) is safe: the cursor state is per-rank.
type corrMapper struct{ cur *interp.MonotoneCursor }

func newCorrMapper(c *interp.Correction) corrMapper {
	return corrMapper{cur: c.NewCursor()}
}

func (m corrMapper) mapTime(rank, _ int, ev *trace.Event) (float64, error) {
	return m.cur.Map(rank, ev.Time), nil
}

// SpillFS is where the pipeline parks its temporary per-rank streams
// (finalized CLC timestamps, parallel-assembly event blocks). The
// default implementation is an OS temp directory the pipeline removes
// when done; tests substitute fault-injecting implementations to
// exercise ENOSPC-style failures on the spill path. Create and Open may
// be called from multiple goroutines for different names.
type SpillFS interface {
	Create(name string) (io.WriteCloser, error)
	Open(name string) (io.ReadCloser, error)
}

// osFS is the default SpillFS: plain files under one temp directory.
type osFS struct{ dir string }

func newOSFS() (*osFS, error) {
	dir, err := os.MkdirTemp("", "tsync-stream-")
	if err != nil {
		return nil, err
	}
	return &osFS{dir: dir}, nil
}

func (fs *osFS) Create(name string) (io.WriteCloser, error) {
	return os.Create(filepath.Join(fs.dir, name))
}

func (fs *osFS) Open(name string) (io.ReadCloser, error) {
	return os.Open(filepath.Join(fs.dir, name))
}

// spillSet is a set of per-rank float64 streams holding finalized
// corrected timestamps: the CLC and Lamport sinks write them as entries
// finalize, and later passes read them back in lockstep with the events.
//
// Every file handle the set hands out is tracked, and Close is
// idempotent: whatever path a run takes out of the pipeline — success,
// decode error, cancellation — the deferred Close closes every
// outstanding handle and, when the set owns its directory, removes it.
// No abort path may leak a temp file or descriptor.
type spillSet struct {
	fs    SpillFS
	owned *osFS // non-nil when the set created (and must remove) the dir
	names []string

	mu      sync.Mutex
	handles []*spillHandle
	closed  bool
}

// newSpillSet creates the per-rank stream set on fs, or on a fresh OS
// temp directory when fs is nil.
func newSpillSet(ranks int, fs SpillFS) (*spillSet, error) {
	s := &spillSet{fs: fs, names: make([]string, ranks)}
	if fs == nil {
		ofs, err := newOSFS()
		if err != nil {
			return nil, err
		}
		s.fs, s.owned = ofs, ofs
	}
	for i := range s.names {
		s.names[i] = fmt.Sprintf("rank%06d.t", i)
	}
	return s, nil
}

// spillHandle wraps one created or opened file with an idempotent Close,
// so the set's teardown and the normal read/write paths can both close
// it without double-close errors.
type spillHandle struct {
	c      io.Closer
	mu     sync.Mutex
	closed bool
}

func (h *spillHandle) Close() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil
	}
	h.closed = true
	return h.c.Close()
}

// track registers a handle for teardown. It fails if the set is already
// closed (a late Create after abort would otherwise leak).
func (s *spillSet) track(c io.Closer) (*spillHandle, error) {
	h := &spillHandle{c: c}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		c.Close()
		return nil, fmt.Errorf("stream: spill set already closed")
	}
	s.handles = append(s.handles, h)
	return h, nil
}

// Close closes every outstanding handle and removes the owned directory.
// It is idempotent and safe to defer alongside normal close paths.
func (s *spillSet) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	handles := s.handles
	s.handles = nil
	s.mu.Unlock()
	var err error
	for _, h := range handles {
		if cerr := h.Close(); err == nil {
			err = cerr
		}
	}
	if s.owned != nil {
		if rerr := os.RemoveAll(s.owned.dir); err == nil {
			err = rerr
		}
	}
	return err
}

// spillWriter appends float64s to one rank's stream. The scratch field
// keeps the hot path allocation-free: a stack buffer passed to the
// io.Writer interface would escape on every call.
type spillWriter struct {
	h       *spillHandle
	bw      *bufio.Writer
	n       int64
	scratch [8]byte
}

func (s *spillSet) writer(rank int) (*spillWriter, error) {
	f, err := s.fs.Create(s.names[rank])
	if err != nil {
		return nil, err
	}
	h, err := s.track(f)
	if err != nil {
		return nil, err
	}
	return &spillWriter{h: h, bw: bufio.NewWriter(f)}, nil
}

func (w *spillWriter) write(v float64) error {
	binary.LittleEndian.PutUint64(w.scratch[:], math.Float64bits(v))
	_, err := w.bw.Write(w.scratch[:])
	w.n++
	return err
}

func (w *spillWriter) close() error {
	err := w.bw.Flush()
	if cerr := w.h.Close(); err == nil {
		err = cerr
	}
	return err
}

// spillMapper replays a spillSet as a timeMapper: each rank's floats are
// read sequentially, one per event.
type spillMapper struct {
	set     *spillSet
	readers []*bufio.Reader
	handles []*spillHandle
	next    []int
	// scratch holds one read buffer per rank (not one shared one):
	// assembleParallel maps different ranks from different goroutines,
	// and a per-rank slot keeps that race-free and allocation-free.
	scratch [][8]byte
}

func (s *spillSet) mapper() *spillMapper {
	return &spillMapper{
		set:     s,
		readers: make([]*bufio.Reader, len(s.names)),
		handles: make([]*spillHandle, len(s.names)),
		next:    make([]int, len(s.names)),
		scratch: make([][8]byte, len(s.names)),
	}
}

func (m *spillMapper) mapTime(rank, idx int, _ *trace.Event) (float64, error) {
	if m.readers[rank] == nil {
		f, err := m.set.fs.Open(m.set.names[rank])
		if err != nil {
			return 0, err
		}
		h, err := m.set.track(f)
		if err != nil {
			return 0, err
		}
		m.handles[rank] = h
		m.readers[rank] = bufio.NewReader(f)
	}
	if idx != m.next[rank] {
		return 0, fmt.Errorf("stream: spill read out of order: rank %d idx %d (want %d)", rank, idx, m.next[rank])
	}
	m.next[rank]++
	buf := m.scratch[rank][:]
	if _, err := io.ReadFull(m.readers[rank], buf); err != nil {
		return 0, fmt.Errorf("stream: spill read rank %d idx %d: %w", rank, idx, err)
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf)), nil
}

func (m *spillMapper) close() error {
	var err error
	for _, h := range m.handles {
		if h != nil {
			if cerr := h.Close(); err == nil {
				err = cerr
			}
		}
	}
	return err
}
