// Package lint holds the shared plumbing for tsync's custom static
// analyzers (the tsyncvet suite). The analyzers machine-check the
// correctness conventions the paper forces on us:
//
//   - determinism: every run is a pure function of its configuration, so
//     wall-clock reads and ambient randomness are banned outside
//     internal/xrand and the cmd/ front-ends (wallclock analyzer);
//   - epsilon discipline: float64 timestamps are never compared with
//     ==/!= — drifting clocks make exact equality meaningless
//     (floateq analyzer);
//   - pipeline discipline: the local timestamp trace.Event.Time, whose
//     violations of the clock condition t_recv >= t_send + l_min are the
//     phenomenon under study, may only be rewritten by the sanctioned
//     correction packages (tsmutate analyzer);
//   - goroutine hygiene: shared state touched from spawned goroutines is
//     either provably synchronized or explicitly annotated, complementing
//     the dynamic race detector (locked analyzer).
//
// Suppression directives: a line-level comment containing "tsync:exact"
// silences floateq, and "tsync:locked" silences locked, for sites where
// the exact comparison or unsynchronized-looking write is intentional and
// justified (bit-for-bit determinism checks, disjoint-index fan-out
// protected by a happens-before edge, ...). Directives are deliberately
// per-line so a justification comment has to sit next to the code it
// excuses.
package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// PathHasSuffix reports whether pkgPath equals suffix or ends in
// "/"+suffix. It is how analyzers recognise repo packages in both the real
// module (path "tsync/internal/xrand") and analysistest-style fixtures
// (path "internal/xrand" relative to testdata/src).
func PathHasSuffix(pkgPath, suffix string) bool {
	return pkgPath == suffix || strings.HasSuffix(pkgPath, "/"+suffix)
}

// PathHasSegment reports whether seg appears as a complete element of the
// slash-separated package path (e.g. "cmd" in "tsync/cmd/clockstudy").
func PathHasSegment(pkgPath, seg string) bool {
	for _, s := range strings.Split(pkgPath, "/") {
		if s == seg {
			return true
		}
	}
	return false
}

// IsTestFile reports whether pos lies in a _test.go file.
func IsTestFile(pass *analysis.Pass, pos token.Pos) bool {
	return strings.HasSuffix(pass.Fset.Position(pos).Filename, "_test.go")
}

// HasLineDirective reports whether the line containing pos carries a
// comment that contains directive (e.g. "tsync:exact"). Only the line of
// pos itself is consulted, so the justification must sit on the flagged
// line.
func HasLineDirective(pass *analysis.Pass, pos token.Pos, directive string) bool {
	f := FileOf(pass, pos)
	if f == nil {
		return false
	}
	line := pass.Fset.Position(pos).Line
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if pass.Fset.Position(c.Pos()).Line == line && strings.Contains(c.Text, directive) {
				return true
			}
		}
	}
	return false
}

// FileOf returns the *ast.File of pass that contains pos, or nil.
func FileOf(pass *analysis.Pass, pos token.Pos) *ast.File {
	for _, f := range pass.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}
