package stream

import (
	"fmt"
	"io"

	"tsync/internal/trace"
)

// Source is an indexed .etr file: the header and per-process metadata
// are held in memory (O(ranks + regions)), while events stay on disk and
// are decoded on demand through per-rank cursors. The index is built by
// one linear decode pass, so a corrupt or truncated file fails here with
// trace.ErrBadFormat before any analysis starts.
type Source struct {
	r     io.ReaderAt
	head  trace.Header
	procs []trace.ProcHeader
	// eventOff[i] and endOff[i] bound proc i's event bytes.
	eventOff, endOff []int64
	// firstRaw[i] is proc i's first event Time (0 when it has none);
	// the Lamport schedule and summary passes need it without a decode.
	firstRaw []float64
	events   int64
}

// NewSource indexes a trace readable at r. The reader must cover the
// whole encoded trace.
func NewSource(r io.ReaderAt) (*Source, error) {
	const probe = 1 << 62 // section length; reads stop at EOF
	er, err := trace.NewEventReader(io.NewSectionReader(r, 0, probe))
	if err != nil {
		return nil, err
	}
	s := &Source{r: r, head: er.Header()}
	for {
		ph, err := er.NextProc()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if ph.Rank != len(s.procs) {
			return nil, fmt.Errorf("stream: proc %d has rank %d", len(s.procs), ph.Rank)
		}
		s.procs = append(s.procs, ph)
		s.eventOff = append(s.eventOff, er.Offset())
		first := 0.0
		prevTrue := 0.0
		var ev trace.Event
		for j := 0; j < ph.EventCount; j++ {
			if err := er.Read(&ev); err != nil {
				return nil, err
			}
			if j == 0 {
				first = ev.Time
				prevTrue = ev.True
			} else if ev.True < prevTrue {
				return nil, fmt.Errorf("stream: rank %d event %d: oracle time regressed", ph.Rank, j)
			} else {
				prevTrue = ev.True
			}
			s.events++
		}
		s.firstRaw = append(s.firstRaw, first)
		s.endOff = append(s.endOff, er.Offset())
	}
	return s, nil
}

// Header returns the file header.
func (s *Source) Header() trace.Header { return s.head }

// Procs returns the per-process headers.
func (s *Source) Procs() []trace.ProcHeader { return s.procs }

// Ranks returns the process count.
func (s *Source) Ranks() int { return len(s.procs) }

// Events returns the total event count.
func (s *Source) Events() int64 { return s.events }

// FirstTime returns rank's first event timestamp (its raw local Time),
// or 0 when the rank recorded no events.
func (s *Source) FirstTime(rank int) float64 { return s.firstRaw[rank] }

// Cursor is a sequential decoder over one rank's events.
type Cursor struct {
	d         *trace.EventDecoder
	remaining int
}

// Cursor opens a fresh decoder over rank's events. Cursors are
// independent; any number may be open at once.
func (s *Source) Cursor(rank int) *Cursor {
	sec := io.NewSectionReader(s.r, s.eventOff[rank], s.endOff[rank]-s.eventOff[rank])
	return &Cursor{d: trace.NewEventDecoder(sec), remaining: s.procs[rank].EventCount}
}

// Next decodes the rank's next event into ev, returning io.EOF after the
// last one.
func (c *Cursor) Next(ev *trace.Event) error {
	if c.remaining == 0 {
		return io.EOF
	}
	if err := c.d.Decode(ev); err != nil {
		if err == io.EOF {
			return io.ErrUnexpectedEOF
		}
		return err
	}
	c.remaining--
	return nil
}
