package omp

import (
	"math"
	"reflect"
	"testing"

	"tsync/internal/analysis"
	"tsync/internal/clock"
	"tsync/internal/topology"
	"tsync/internal/trace"
)

func runBench(t testing.TB, threads, regions int, seed uint64) *trace.Trace {
	t.Helper()
	tm, err := NewTeam(Config{
		Machine: topology.Itanium(),
		Timer:   clock.TSC,
		Threads: threads,
		Seed:    seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := tm.RunParallelFor("parallel-for", regions, func(thread, region int) float64 {
		return 5e-6 + float64(thread%3)*0.5e-6
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTraceStructure(t *testing.T) {
	tr := runBench(t, 4, 10, 1)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Procs) != 4 {
		t.Fatalf("%d procs", len(tr.Procs))
	}
	// master: Fork, Enter, BarrierEnter, BarrierExit, Exit, Join per region
	if got := len(tr.Procs[0].Events); got != 10*6 {
		t.Fatalf("master has %d events, want 60", got)
	}
	// workers: Enter, BarrierEnter, BarrierExit, Exit per region
	for i := 1; i < 4; i++ {
		if got := len(tr.Procs[i].Events); got != 10*4 {
			t.Fatalf("worker %d has %d events, want 40", i, got)
		}
	}
	// event order on the master
	kinds := []trace.Kind{trace.Fork, trace.Enter, trace.BarrierEnter, trace.BarrierExit, trace.Exit, trace.Join}
	for i, ev := range tr.Procs[0].Events {
		if ev.Kind != kinds[i%6] {
			t.Fatalf("master event %d is %v, want %v", i, ev.Kind, kinds[i%6])
		}
		if ev.Instance != int32(i/6) {
			t.Fatalf("master event %d instance %d", i, ev.Instance)
		}
	}
}

func TestTrueTimeSemanticsHold(t *testing.T) {
	// in true time, fork precedes all, join follows all, barriers overlap
	tr := runBench(t, 8, 20, 2)
	type region struct {
		fork, join              float64
		minEv, maxEv            float64
		maxBarEnter, minBarExit float64
		n                       int
	}
	regions := map[int32]*region{}
	for _, p := range tr.Procs {
		for _, ev := range p.Events {
			r, ok := regions[ev.Instance]
			if !ok {
				r = &region{minBarExit: 1e18, minEv: 1e18}
				regions[ev.Instance] = r
			}
			switch ev.Kind {
			case trace.Fork:
				r.fork = ev.True
			case trace.Join:
				r.join = ev.True
			case trace.BarrierEnter:
				if ev.True > r.maxBarEnter {
					r.maxBarEnter = ev.True
				}
			case trace.BarrierExit:
				if ev.True < r.minBarExit {
					r.minBarExit = ev.True
				}
			}
			if ev.Kind != trace.Fork && ev.Kind != trace.Join {
				if ev.True < r.minEv {
					r.minEv = ev.True
				}
				if ev.True > r.maxEv {
					r.maxEv = ev.True
				}
				r.n++
			}
		}
	}
	if len(regions) != 20 {
		t.Fatalf("%d regions", len(regions))
	}
	for inst, r := range regions {
		if r.fork > r.minEv {
			t.Fatalf("region %d: fork at %v after first event %v (true time)", inst, r.fork, r.minEv)
		}
		if r.join < r.maxEv {
			t.Fatalf("region %d: join at %v before last event %v (true time)", inst, r.join, r.maxEv)
		}
		if r.minBarExit < r.maxBarEnter {
			t.Fatalf("region %d: barrier did not overlap in true time", inst)
		}
	}
}

func TestFig8ViolationShape(t *testing.T) {
	// the headline result: many violated regions at 4 threads, none (or
	// nearly none) at 16
	pct := map[int]float64{}
	for _, threads := range []int{4, 16} {
		// average over a few seeds like the paper's three repetitions
		total, bad := 0, 0
		for seed := uint64(0); seed < 3; seed++ {
			tr := runBench(t, threads, 50, 100+seed)
			c, err := analysis.POMPCensusOf(tr)
			if err != nil {
				t.Fatal(err)
			}
			total += c.Regions
			bad += c.Any
		}
		pct[threads] = 100 * float64(bad) / float64(total)
	}
	if pct[4] < 40 {
		t.Fatalf("4 threads: only %.1f%% of regions violated, expected a majority", pct[4])
	}
	if pct[16] > 5 {
		t.Fatalf("16 threads: %.1f%% of regions violated, expected ~none", pct[16])
	}
	if pct[16] >= pct[4] {
		t.Fatalf("violation rate did not fall with thread count: %v", pct)
	}
}

func TestDeterministic(t *testing.T) {
	a := runBench(t, 6, 10, 7)
	b := runBench(t, 6, 10, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("omp traces not deterministic")
	}
}

func TestSingleThreadTeam(t *testing.T) {
	tr := runBench(t, 1, 5, 3)
	if len(tr.Procs) != 1 {
		t.Fatalf("%d procs", len(tr.Procs))
	}
	c, err := analysis.POMPCensusOf(tr)
	if err != nil {
		t.Fatal(err)
	}
	if c.Regions != 5 {
		t.Fatalf("%d regions", c.Regions)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewTeam(Config{Machine: topology.Itanium(), Timer: clock.TSC, Threads: 0}); err == nil {
		t.Fatalf("zero threads accepted")
	}
	if _, err := NewTeam(Config{Machine: topology.Itanium(), Timer: clock.TSC, Threads: 17}); err == nil {
		t.Fatalf("17 threads on a 16-core node accepted")
	}
	bad := topology.Pinning{{Node: 5}}
	if _, err := NewTeam(Config{Machine: topology.Itanium(), Timer: clock.TSC, Threads: 1, Pinning: bad}); err == nil {
		t.Fatalf("invalid pinning accepted")
	}
	short := topology.Pinning{{}}
	if _, err := NewTeam(Config{Machine: topology.Itanium(), Timer: clock.TSC, Threads: 2, Pinning: short}); err == nil {
		t.Fatalf("short pinning accepted")
	}
}

func TestRegionsValidation(t *testing.T) {
	tm, err := NewTeam(Config{Machine: topology.Itanium(), Timer: clock.TSC, Threads: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tm.RunParallelFor("x", 0, func(int, int) float64 { return 0 }); err == nil {
		t.Fatalf("zero regions accepted")
	}
}

func TestSameChipThreadsRarelyViolate(t *testing.T) {
	// pinning all threads to one chip means one shared oscillator: the
	// only remaining error sources are read noise and quantization, so
	// violations should be rare (the paper's intra-chip hypothesis)
	m := topology.Itanium()
	pin, err := topology.SMPThreads(m, 4) // chip-major: all on chip 0
	if err != nil {
		t.Fatal(err)
	}
	tm, err := NewTeam(Config{Machine: m, Timer: clock.TSC, Threads: 4, Seed: 5, Pinning: pin})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := tm.RunParallelFor("pinned", 100, func(int, int) float64 { return 5e-6 })
	if err != nil {
		t.Fatal(err)
	}
	c, err := analysis.POMPCensusOf(tr)
	if err != nil {
		t.Fatal(err)
	}
	if pct := 100 * float64(c.Any) / float64(c.Regions); pct > 10 {
		t.Fatalf("same-chip threads violated %v%% of regions", pct)
	}
}

func BenchmarkParallelFor16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runBench(b, 16, 10, uint64(i))
	}
}

func TestMeasureOffsetsRecoversChipSkew(t *testing.T) {
	tm, err := NewTeam(Config{Machine: topology.Itanium(), Timer: clock.TSC, Threads: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	table, err := tm.MeasureOffsets(20)
	if err != nil {
		t.Fatal(err)
	}
	if len(table) != 4 || table[0].Offset != 0 {
		t.Fatalf("table %+v", table)
	}
	// compare against the oracle offsets of the shared oscillators
	for i := 1; i < 4; i++ {
		rdM, err := tm.cluster.NewReader(tm.threads[0].core, "check0")
		if err != nil {
			t.Fatal(err)
		}
		rdW, err := tm.cluster.NewReader(tm.threads[i].core, "checkW")
		if err != nil {
			t.Fatal(err)
		}
		trueOff := rdM.Ideal(0) - rdW.Ideal(0)
		if got := table[i].Offset; math.Abs(got-trueOff) > 0.15e-6 {
			t.Fatalf("thread %d: measured %v, true %v", i, got, trueOff)
		}
	}
}

func TestMeasureOffsetsRejectsBadReps(t *testing.T) {
	tm, err := NewTeam(Config{Machine: topology.Itanium(), Timer: clock.TSC, Threads: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tm.MeasureOffsets(0); err == nil {
		t.Fatalf("reps=0 accepted")
	}
}

func TestRunLoopStaticVsDynamicImbalance(t *testing.T) {
	// a pathologically imbalanced iteration space: static scheduling
	// leaves one thread with all the heavy iterations; dynamic evens the
	// loads and narrows the barrier-arrival spread
	spread := func(sched Schedule) float64 {
		tm, err := NewTeam(Config{Machine: topology.Itanium(), Timer: clock.TSC, Threads: 4, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		tr, err := tm.RunLoop("loop", 3, 64, 2, sched, func(iter, region int) float64 {
			if iter < 16 {
				return 4e-6 // the first block is 8x heavier
			}
			return 0.5e-6
		})
		if err != nil {
			t.Fatal(err)
		}
		// spread = max - min of BarrierEnter true times in region 0
		min, max := 1e18, -1.0
		for _, p := range tr.Procs {
			for _, ev := range p.Events {
				if ev.Kind == trace.BarrierEnter && ev.Instance == 0 {
					if ev.True < min {
						min = ev.True
					}
					if ev.True > max {
						max = ev.True
					}
				}
			}
		}
		return max - min
	}
	static := spread(Static)
	dynamic := spread(Dynamic)
	if dynamic >= static/2 {
		t.Fatalf("dynamic scheduling did not narrow the arrival spread: static %v, dynamic %v", static, dynamic)
	}
}

func TestRunLoopValidation(t *testing.T) {
	tm, err := NewTeam(Config{Machine: topology.Itanium(), Timer: clock.TSC, Threads: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tm.RunLoop("x", 1, 0, 1, Static, func(int, int) float64 { return 0 }); err == nil {
		t.Fatalf("zero iterations accepted")
	}
}

func TestRunLoopCoversAllIterations(t *testing.T) {
	for _, sched := range []Schedule{Static, Dynamic} {
		tm, err := NewTeam(Config{Machine: topology.Itanium(), Timer: clock.TSC, Threads: 3, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		seen := make([]int, 30)
		if _, err := tm.RunLoop("cover", 1, 30, 4, sched, func(iter, region int) float64 {
			seen[iter]++
			return 1e-6
		}); err != nil {
			t.Fatal(err)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("sched %v: iteration %d costed %d times", sched, i, c)
			}
		}
	}
}
