package trace

// Incremental codec access. Read and Write materialize whole traces; the
// types here expose the same .etr encoding one process and one event at a
// time, so million-event traces can flow through analyses in O(1) memory
// per rank (internal/stream). Read and Write are thin wrappers over
// EventReader and EventWriter — both paths share a single encoder and
// decoder, which is what makes the streaming pipeline's output
// bit-identical to the in-memory one by construction rather than by
// testing alone.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"tsync/internal/topology"
)

// Format limits enforced by the decoder (see decodeChunk for why counts
// are never trusted with pre-allocations).
const (
	maxStringLen  = 1 << 16
	maxRegions    = 1 << 24
	maxProcs      = 1 << 24
	maxProcEvents = 1 << 30
)

// Header is a trace file's global metadata: everything before the first
// per-process stream.
type Header struct {
	Machine    string
	Timer      string
	MinLatency [4]float64
	Regions    []string
	ProcCount  int
}

// HeaderOf extracts the header of an in-memory trace.
func HeaderOf(t *Trace) Header {
	return Header{
		Machine:    t.Machine,
		Timer:      t.Timer,
		MinLatency: t.MinLatency,
		Regions:    t.Regions,
		ProcCount:  len(t.Procs),
	}
}

// MinLatencyBetween returns l_min for a message between two cores, as
// Trace.MinLatencyBetween does for ranks.
func (h *Header) MinLatencyBetween(a, b topology.CoreID) float64 {
	return h.MinLatency[topology.Relate(a, b)]
}

// ProcHeader is one process's stream metadata: the fields of Proc minus
// the events themselves.
type ProcHeader struct {
	Rank       int
	Core       topology.CoreID
	Clock      string
	EventCount int
}

type countingReader struct {
	r io.Reader
	n int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += int64(n)
	return n, err
}

// EventReader decodes a .etr stream incrementally: the header up front,
// then one process at a time, then one event at a time. It never
// allocates ahead of the bytes actually consumed, and reports truncated
// or corrupt input as ErrBadFormat exactly like Read (whose
// implementation it is). Both codec versions are read through the same
// interface; v2 streams additionally support resynchronizing past
// corruption under a ResyncPolicy (see NewEventReaderOpts).
type EventReader struct {
	br        *bufio.Reader
	cr        *countingReader
	header    Header
	procsRead int // processes whose header has been returned
	remaining int // events left in the current process (-1: unknown, v2 salvage)
	inProc    bool
	version   int
	curRank   int // rank of the current process, -1 before the first

	// v2 state
	pol          ResyncPolicy
	blk          blockReader
	rep          CorruptionReport
	frameEvents  []byte  // undecoded remainder of the current frame
	frameDecoded []Event // undelivered remainder of the current columnar frame
	framePos     int
	pending      parsed // block that ended the current section, not yet consumed
	pendingStart int64
	hasPending   bool
	sectionStart int64 // where the current process's event bytes begin
	gap          bool  // a resync gap precedes the next event (see TookGap)
}

// NewEventReader reads and validates the file header with a strict (no
// resync) policy.
func NewEventReader(r io.Reader) (*EventReader, error) {
	return NewEventReaderOpts(r, ResyncPolicy{})
}

// NewEventReaderOpts reads and validates the file header. The policy
// governs corruption handling for v2 streams; the header itself must be
// intact regardless — it is the trust root resync depends on.
func NewEventReaderOpts(r io.Reader, pol ResyncPolicy) (*EventReader, error) {
	cr := &countingReader{r: r}
	var br *bufio.Reader
	if pol.Enabled {
		br = bufio.NewReaderSize(cr, scanWindow)
	} else {
		br = bufio.NewReader(cr)
	}
	er := &EventReader{br: br, cr: cr, pol: pol, curRank: -1}
	magic := make([]byte, len(codecMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if string(magic) != codecMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, magic)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if ver != codecVersion && ver != codecVersion2 {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, ver)
	}
	er.version = int(ver)
	h := &er.header
	if h.Machine, err = readString(br, maxStringLen); err != nil {
		return nil, badFormat("header", err)
	}
	if h.Timer, err = readString(br, maxStringLen); err != nil {
		return nil, badFormat("header", err)
	}
	for i := range h.MinLatency {
		if h.MinLatency[i], err = readFloat(br); err != nil {
			return nil, badFormat("header", err)
		}
	}
	nRegions, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, badFormat("header", err)
	}
	if nRegions > maxRegions {
		return nil, fmt.Errorf("%w: region table declares %d entries (limit %d)", ErrBadFormat, nRegions, maxRegions)
	}
	h.Regions = make([]string, 0, min(nRegions, decodeChunk))
	for i := uint64(0); i < nRegions; i++ {
		s, err := readString(br, maxStringLen)
		if err != nil {
			return nil, badFormat("region table", err)
		}
		h.Regions = append(h.Regions, s)
	}
	nProcs, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, badFormat("header", err)
	}
	if nProcs > maxProcs {
		return nil, fmt.Errorf("%w: trace declares %d processes (limit %d)", ErrBadFormat, nProcs, maxProcs)
	}
	h.ProcCount = int(nProcs)
	if er.version == codecVersion2 {
		er.blk = blockReader{
			br:     br,
			pos:    er.Offset,
			rank:   func() int { return er.curRank },
			accept: er.acceptBlock,
			pol:    pol,
			rep:    &er.rep,
		}
	}
	return er, nil
}

// acceptBlock is the EventReader's semantic filter for v2 blocks:
// process headers must advance the rank, frames may only belong to the
// current or a later rank (an earlier rank's frame after this point is a
// stale duplicate — misleading if trusted). Blocks that fail it are
// corruption, handled by the caller's policy like any other.
func (er *EventReader) acceptBlock(p *parsed) bool {
	if p.rank >= er.header.ProcCount {
		return false
	}
	if p.typ == blockFrame || p.typ == blockColFrame {
		return p.rank >= er.curRank
	}
	return p.rank > er.curRank
}

// Header returns the file header. The Regions slice is shared, not
// copied.
func (er *EventReader) Header() Header { return er.header }

// Version reports the codec version of the stream (Version1 or
// Version2).
func (er *EventReader) Version() int { return er.version }

// Report exposes the corruption incidents recovered from so far. The
// pointer stays valid and updates as reading proceeds; it is empty for
// v1 streams and strict-mode readers (which fail instead).
func (er *EventReader) Report() *CorruptionReport { return &er.rep }

// Offset reports how many bytes of the underlying stream have been
// consumed by what the reader has returned so far — the file position of
// the next unread element, independent of internal buffering.
func (er *EventReader) Offset() int64 {
	return er.cr.n - int64(er.br.Buffered())
}

// Position is Offset adjusted for look-ahead: when the reader has peeked
// at (but not yet delivered) the block that ends the current process's
// section, Position reports where that block starts. After draining a
// process it is the exclusive end of the process's byte section.
func (er *EventReader) Position() int64 {
	if er.hasPending {
		return er.pendingStart
	}
	return er.Offset()
}

// SectionStart reports where the current process's event bytes begin —
// after its process header, or at its first salvaged frame when the
// header itself was lost.
func (er *EventReader) SectionStart() int64 { return er.sectionStart }

// TookGap reports — and clears — whether a resync gap (skipped bytes or
// known-lost events) precedes the next event of the current process.
// Callers indexing a stream poll it after every read to record where
// happened-before knowledge was severed.
func (er *EventReader) TookGap() bool {
	g := er.gap
	er.gap = false
	return g
}

// bad wraps a decode error with the stream position and rank being read,
// so corruption reports are actionable without a hex dump.
func (er *EventReader) bad(what string, err error) error {
	return badFormat(fmt.Sprintf("%s (at byte %d, rank %d)", what, er.Offset(), er.curRank), err)
}

// NextProc advances to the next process, skipping any events of the
// current one that were not read. It returns io.EOF after the last
// process.
func (er *EventReader) NextProc() (ProcHeader, error) {
	if er.version == codecVersion2 {
		return er.nextProcV2()
	}
	for er.remaining > 0 {
		var ev Event
		if err := er.Read(&ev); err != nil {
			return ProcHeader{}, err
		}
	}
	if er.procsRead == er.header.ProcCount {
		er.inProc = false
		return ProcHeader{}, io.EOF
	}
	var ph ProcHeader
	rank, err := binary.ReadUvarint(er.br)
	if err != nil {
		return ProcHeader{}, er.bad("process header", err)
	}
	ph.Rank = int(rank)
	var core [3]uint64
	for j := range core {
		if core[j], err = binary.ReadUvarint(er.br); err != nil {
			return ProcHeader{}, er.bad("process header", err)
		}
	}
	ph.Core = topology.CoreID{Node: int(core[0]), Chip: int(core[1]), Core: int(core[2])}
	if ph.Clock, err = readString(er.br, maxStringLen); err != nil {
		return ProcHeader{}, er.bad("process header", err)
	}
	nEvents, err := binary.ReadUvarint(er.br)
	if err != nil {
		return ProcHeader{}, er.bad("event count", err)
	}
	if nEvents > maxProcEvents {
		return ProcHeader{}, fmt.Errorf("%w: rank %d declares %d events (limit %d)", ErrBadFormat, ph.Rank, nEvents, maxProcEvents)
	}
	ph.EventCount = int(nEvents)
	er.procsRead++
	er.curRank = ph.Rank
	er.remaining = ph.EventCount
	er.inProc = true
	er.sectionStart = er.Offset()
	return ph, nil
}

// nextProcV2 is NextProc for framed streams: it drains the current
// section, then consumes either the stashed boundary block or the next
// block from the stream. A proc block starts the next process normally;
// a frame block where a header was expected means the header was
// destroyed — strict readers fail, resync readers synthesize a
// placeholder header (EventCount -1, unknown) and salvage the frames.
func (er *EventReader) nextProcV2() (ProcHeader, error) {
	var ev Event
	for er.inProc {
		err := er.readV2(&ev)
		if err == io.EOF {
			break
		}
		if err != nil {
			return ProcHeader{}, err
		}
	}
	if er.procsRead == er.header.ProcCount {
		er.inProc = false
		return ProcHeader{}, io.EOF
	}
	var p parsed
	var pstart int64
	if er.hasPending {
		p, pstart = er.pending, er.pendingStart
		er.hasPending = false
	} else {
		nInc := len(er.rep.Incidents)
		var err error
		p, pstart, err = er.blk.nextBlock()
		if err == io.EOF {
			er.inProc = false
			if er.procsRead < er.header.ProcCount {
				if !er.pol.Enabled {
					return ProcHeader{}, er.bad("process header", io.ErrUnexpectedEOF)
				}
				if len(er.rep.Incidents) == nInc {
					er.rep.note(er.Offset(), er.curRank, 0,
						fmt.Sprintf("%d declared processes missing at end of stream", er.header.ProcCount-er.procsRead))
				}
				er.rep.UnknownLoss = true
			}
			return ProcHeader{}, io.EOF
		}
		if err != nil {
			return ProcHeader{}, err
		}
	}
	if p.typ == blockProc {
		ph := p.ph
		er.procsRead++
		er.curRank = ph.Rank
		er.remaining = ph.EventCount
		er.inProc = true
		er.gap = false
		er.frameEvents = nil
		er.frameDecoded, er.framePos = nil, 0
		er.sectionStart = er.Offset()
		return ph, nil
	}
	if !er.pol.Enabled {
		return ProcHeader{}, er.bad("process header", errors.New("frame block where a process header was expected"))
	}
	ph := ProcHeader{Rank: p.rank, Clock: "?", EventCount: -1}
	er.rep.UnknownLoss = true
	er.procsRead++
	er.curRank = p.rank
	er.remaining = -1
	er.inProc = true
	er.gap = true
	if p.typ == blockColFrame {
		er.frameEvents = nil
		er.frameDecoded, er.framePos = p.decoded, 0
	} else {
		er.frameEvents = p.events
		er.frameDecoded, er.framePos = nil, 0
	}
	er.sectionStart = pstart
	return ph, nil
}

// Read decodes the current process's next event into ev. It returns
// io.EOF when the process's declared events are exhausted (call NextProc
// to continue) and ErrBadFormat when the stream ends or corrupts
// mid-event — unless a resync policy turns the corruption into a
// reported gap instead.
func (er *EventReader) Read(ev *Event) error {
	if !er.inProc {
		return fmt.Errorf("trace: EventReader.Read before NextProc") //tsync:rawerr — caller API misuse, not trace damage; classifying it would misdirect the corruption dispatch
	}
	if er.version == codecVersion2 {
		return er.readV2(ev)
	}
	if er.remaining == 0 {
		return io.EOF
	}
	if err := readEventFast(er.br, ev); err != nil {
		return er.bad("events", err)
	}
	er.remaining--
	return nil
}

// readV2 delivers the next event of the current process from its
// frames. The current section ends — io.EOF — when the declared events
// are exhausted, or at the first block belonging to a later process
// (stashed for NextProc), or at end of stream.
func (er *EventReader) readV2(ev *Event) error {
	for {
		if er.framePos < len(er.frameDecoded) {
			*ev = er.frameDecoded[er.framePos]
			er.framePos++
			if er.framePos == len(er.frameDecoded) {
				// Drained: the scratch behind the slice is recycled by the
				// next block read, so drop the alias now.
				er.frameDecoded, er.framePos = nil, 0
			}
			if er.remaining > 0 {
				er.remaining--
			}
			return nil
		}
		if len(er.frameEvents) > 0 {
			n, ok := decodeEvent(er.frameEvents, ev)
			if !ok {
				// A CRC-valid frame with undecodable events: strict mode
				// only — resync deep-validates before accepting a block.
				er.frameEvents = nil
				return er.bad("frame events", errors.New("malformed event"))
			}
			er.frameEvents = er.frameEvents[n:]
			if er.remaining > 0 {
				er.remaining--
			}
			return nil
		}
		if er.remaining == 0 || er.hasPending {
			return io.EOF
		}
		nInc := len(er.rep.Incidents)
		p, pstart, err := er.blk.nextBlock()
		if err == io.EOF {
			if er.remaining > 0 {
				if !er.pol.Enabled {
					return er.bad("events", io.ErrUnexpectedEOF)
				}
				if lerr := er.rep.lost(int64(er.remaining), er.pol); lerr != nil {
					return lerr
				}
				if len(er.rep.Incidents) == nInc {
					er.rep.note(er.Offset(), er.curRank, 0, "declared events missing at end of stream")
				}
				er.gap = true
			}
			er.remaining = 0
			return io.EOF
		}
		if err != nil {
			return err
		}
		if len(er.rep.Incidents) > nInc {
			er.gap = true
		}
		if (p.typ == blockFrame || p.typ == blockColFrame) && p.rank == er.curRank {
			if er.remaining > 0 && p.count > er.remaining {
				if !er.pol.Enabled {
					return er.bad("frame", fmt.Errorf("frame of %d events exceeds the %d still declared", p.count, er.remaining))
				}
				// The declared count and the frames disagree; the frames
				// are checksummed, the count may not be. Keep the events,
				// stop trusting the count.
				er.rep.UnknownLoss = true
				er.remaining = -1
			}
			if p.typ == blockColFrame {
				er.frameDecoded, er.framePos = p.decoded, 0
			} else {
				er.frameEvents = p.events
			}
			continue
		}
		// A block of a later process: the current section ends here.
		if er.remaining > 0 {
			if !er.pol.Enabled {
				return er.bad("events", fmt.Errorf("process ended with %d declared events missing", er.remaining))
			}
			if lerr := er.rep.lost(int64(er.remaining), er.pol); lerr != nil {
				return lerr
			}
			if len(er.rep.Incidents) == nInc {
				er.rep.note(pstart, er.curRank, 0, "declared events missing before next block")
			}
			er.gap = true
		}
		er.pending, er.pendingStart, er.hasPending = p, pstart, true
		er.remaining = 0
		return io.EOF
	}
}

// EventWriter encodes a .etr stream incrementally, mirroring EventReader.
// The codec stores each process's event count before its events, so
// BeginProc must be told the count up front; Close verifies every
// declared process and event was actually written.
type EventWriter struct {
	bw        *bufio.Writer
	cw        *countingWriter
	procCount int
	begun     int
	remaining int // events still owed to the current process
	scratch   []byte
	fw        *frameWriter // non-nil when writing v2 framed blocks
}

// NewEventWriter writes a v1 file header and returns a writer positioned
// before the first process.
func NewEventWriter(w io.Writer, h Header) (*EventWriter, error) {
	return NewEventWriterOpts(w, h, WriterOptions{})
}

// NewEventWriterOpts is NewEventWriter with an explicit codec version
// and frame geometry. The zero options produce bytes identical to
// NewEventWriter.
func NewEventWriterOpts(w io.Writer, h Header, o WriterOptions) (*EventWriter, error) {
	o, err := o.normalize()
	if err != nil {
		return nil, err
	}
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	ew := &EventWriter{bw: bw, cw: cw, procCount: h.ProcCount, scratch: make([]byte, 0, maxEventSize)}
	if o.Version == Version2 {
		ew.fw = newFrameWriter(bw, o.FrameEvents, o.Columnar)
	}
	if _, err := bw.WriteString(codecMagic); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(byte(o.Version)); err != nil {
		return nil, err
	}
	if err := writeString(bw, h.Machine); err != nil {
		return nil, err
	}
	if err := writeString(bw, h.Timer); err != nil {
		return nil, err
	}
	for _, l := range h.MinLatency {
		if err := writeFloat(bw, l); err != nil {
			return nil, err
		}
	}
	if err := writeUvarint(bw, uint64(len(h.Regions))); err != nil {
		return nil, err
	}
	for _, r := range h.Regions {
		if err := writeString(bw, r); err != nil {
			return nil, err
		}
	}
	if err := writeUvarint(bw, uint64(h.ProcCount)); err != nil {
		return nil, err
	}
	return ew, nil
}

// Offset reports how many bytes have reached the underlying writer plus
// what is buffered — the file position after everything written so far.
func (ew *EventWriter) Offset() int64 {
	return ew.cw.n + int64(ew.bw.Buffered())
}

// BeginProc writes the next process header. The previous process must
// have received exactly its declared events.
func (ew *EventWriter) BeginProc(ph ProcHeader) error {
	if ew.remaining != 0 {
		return fmt.Errorf("trace: BeginProc with %d events still owed to the previous process", ew.remaining)
	}
	if ew.begun == ew.procCount {
		return fmt.Errorf("trace: BeginProc beyond the declared %d processes", ew.procCount)
	}
	if ew.fw != nil {
		if err := ew.fw.beginProc(ph); err != nil {
			return err
		}
		ew.begun++
		ew.remaining = ph.EventCount
		return nil
	}
	if err := writeUvarint(ew.bw, uint64(ph.Rank)); err != nil {
		return err
	}
	for _, c := range [3]int{ph.Core.Node, ph.Core.Chip, ph.Core.Core} {
		if err := writeUvarint(ew.bw, uint64(c)); err != nil {
			return err
		}
	}
	if err := writeString(ew.bw, ph.Clock); err != nil {
		return err
	}
	if err := writeUvarint(ew.bw, uint64(ph.EventCount)); err != nil {
		return err
	}
	ew.begun++
	ew.remaining = ph.EventCount
	return nil
}

// Write encodes one event of the current process. The encoding goes
// through a writer-owned scratch buffer, so the call allocates nothing.
func (ew *EventWriter) Write(ev *Event) error {
	if ew.remaining == 0 {
		return fmt.Errorf("trace: Write beyond the process's declared event count")
	}
	if ew.fw != nil {
		if err := ew.fw.add(ev); err != nil {
			return err
		}
		ew.remaining--
		return nil
	}
	ew.scratch = appendEvent(ew.scratch[:0], ev)
	if _, err := ew.bw.Write(ew.scratch); err != nil {
		return err
	}
	ew.remaining--
	return nil
}

// CopyEvents splices n already-encoded events (as produced by an
// EventEncoder) from r into the current process, without re-decoding
// them. The caller owns the invariant that r really carries n canonical
// event encodings.
func (ew *EventWriter) CopyEvents(r io.Reader, n int) error {
	if n > ew.remaining {
		return fmt.Errorf("trace: CopyEvents of %d events exceeds the %d still declared", n, ew.remaining)
	}
	if ew.fw != nil {
		// v2 needs the events re-framed and checksummed, so the splice
		// decodes and re-adds rather than copying bytes.
		d := NewEventDecoder(r)
		var ev Event
		for i := 0; i < n; i++ {
			if err := d.Decode(&ev); err != nil {
				return badFormat("CopyEvents", err)
			}
			if err := ew.fw.add(&ev); err != nil {
				return err
			}
		}
		ew.remaining -= n
		return nil
	}
	if err := ew.bw.Flush(); err != nil {
		return err
	}
	if _, err := io.Copy(ew.cw, r); err != nil {
		return err
	}
	ew.remaining -= n
	return nil
}

// Close flushes the stream after verifying that every declared process
// and event was written. It does not close the underlying writer.
func (ew *EventWriter) Close() error {
	if ew.remaining != 0 {
		return fmt.Errorf("trace: Close with %d events still owed to the current process", ew.remaining)
	}
	if ew.begun != ew.procCount {
		return fmt.Errorf("trace: Close after %d of %d declared processes", ew.begun, ew.procCount)
	}
	if ew.fw != nil {
		if err := ew.fw.flushFrame(); err != nil {
			return err
		}
	}
	return ew.bw.Flush()
}

// EventEncoder writes bare event encodings (no header) to a stream — the
// spill-file format of internal/stream, byte-identical to the event
// bytes inside a .etr file.
type EventEncoder struct {
	bw      *bufio.Writer
	n       int
	scratch []byte
}

// NewEventEncoder returns an encoder over w.
func NewEventEncoder(w io.Writer) *EventEncoder {
	return &EventEncoder{bw: bufio.NewWriter(w), scratch: make([]byte, 0, maxEventSize)}
}

// Encode appends one event. Like EventWriter.Write, it encodes into an
// encoder-owned scratch buffer and allocates nothing per call.
func (e *EventEncoder) Encode(ev *Event) error {
	e.scratch = appendEvent(e.scratch[:0], ev)
	_, err := e.bw.Write(e.scratch)
	if err == nil {
		e.n++
	}
	return err
}

// Count reports how many events have been encoded.
func (e *EventEncoder) Count() int { return e.n }

// Flush flushes buffered bytes to the underlying writer.
func (e *EventEncoder) Flush() error { return e.bw.Flush() }

// decoderBufSize sizes the decoder's read buffer: large enough that the
// per-event Peek refill (a memmove plus a read) amortizes over a few
// hundred events.
const decoderBufSize = 1 << 15

// EventDecoder reads bare event encodings (no header) from a stream. It
// returns io.EOF at a clean boundary and ErrBadFormat mid-event.
type EventDecoder struct {
	br *bufio.Reader
	cr countingReader
}

// NewEventDecoder returns a decoder over r.
func NewEventDecoder(r io.Reader) *EventDecoder {
	d := &EventDecoder{}
	d.cr = countingReader{r: r}
	d.br = bufio.NewReaderSize(&d.cr, decoderBufSize)
	return d
}

// Decode reads the next event into ev.
func (d *EventDecoder) Decode(ev *Event) error {
	if _, err := d.br.Peek(1); err == io.EOF {
		return io.EOF
	}
	if err := readEventFast(d.br, ev); err != nil {
		return badFormat(fmt.Sprintf("events (at byte %d)", d.cr.n-int64(d.br.Buffered())), err)
	}
	return nil
}

// DecodeBatch decodes up to len(evs) events into evs, returning how many
// were filled. A clean end of stream surfaces as (n, io.EOF) with n
// possibly zero; corruption mid-event reports ErrBadFormat. The tight
// loop exists for the slab stages of internal/stream: one call decodes a
// whole slab without per-event interface dispatch in the caller.
func (d *EventDecoder) DecodeBatch(evs []Event) (int, error) {
	i := 0
	for i < len(evs) {
		// Fast path: decode straight out of the buffered bytes while a
		// whole worst-case event provably fits, then discard the chunk in
		// one step. The tail (or a malformed event) falls through to
		// Decode, which refills the buffer and classifies errors with the
		// exact position — the two paths accept identical byte sequences.
		buf, _ := d.br.Peek(d.br.Buffered())
		consumed := 0
		for i < len(evs) && len(buf)-consumed >= maxEventSize {
			n, ok := decodeEvent(buf[consumed:], &evs[i])
			if !ok {
				break
			}
			consumed += n
			i++
		}
		if consumed > 0 {
			if _, err := d.br.Discard(consumed); err != nil {
				return i, err
			}
			continue
		}
		if err := d.Decode(&evs[i]); err != nil {
			return i, err
		}
		i++
	}
	return len(evs), nil
}
