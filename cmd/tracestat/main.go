// Command tracestat inspects a trace file: descriptive statistics, the
// clock-condition violation census, and a Late Sender wait-state analysis
// showing how far the measured waiting times deviate from the simulation's
// ground truth — the "false conclusions" the paper warns about. With
// -json it dumps the full trace as JSON instead.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tsync/internal/analysis"
	"tsync/internal/render"
	"tsync/internal/trace"
)

func main() {
	var (
		in       = flag.String("i", "trace.etr", "input trace file")
		jsonOut  = flag.Bool("json", false, "dump the trace as JSON to stdout")
		timeline = flag.Bool("timeline", false, "render a message time-line of the densest second")
	)
	flag.Parse()

	if err := run(*in, *jsonOut, *timeline); err != nil {
		fmt.Fprintln(os.Stderr, "tracestat:", err)
		os.Exit(1)
	}
}

func run(in string, jsonOut, timeline bool) error {
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	var tr *trace.Trace
	if strings.HasSuffix(in, ".json") {
		tr, err = trace.ReadJSON(f)
	} else {
		tr, err = trace.Read(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if jsonOut {
		return trace.WriteJSON(os.Stdout, tr)
	}
	fmt.Print(trace.Summarize(tr).String())

	census, err := analysis.CensusOf(tr)
	if err != nil {
		return err
	}
	fmt.Printf("\nclock-condition census (recorded timestamps):\n")
	fmt.Printf("  %d messages, %d reversed (%.2f%%), %d violate t_recv >= t_send + l_min\n",
		census.Messages, census.Reversed, census.PctReversed(), census.ClockCondition)
	fmt.Printf("  %d logical messages from collectives, %d reversed\n",
		census.LogicalMessages, census.ReversedLogical)

	if prof, err := analysis.ProfileRegions(tr, false); err == nil && len(prof) > 0 {
		fmt.Printf("\nregion profile (recorded timestamps):\n")
		for _, rp := range prof {
			flag := ""
			if rp.Negative > 0 {
				flag = fmt.Sprintf("   <- %d negative durations (clock error!)", rp.Negative)
			}
			fmt.Printf("  %-22q %6d visits, incl %10.1f µs, excl %10.1f µs%s\n",
				rp.Region, rp.Visits, rp.Inclusive*1e6, rp.Exclusive*1e6, flag)
		}
	}

	lat, err := analysis.MessageLatencies(tr, false)
	if err == nil && lat.Stats.N() > 0 {
		fmt.Printf("\napparent one-way latencies (recorded timestamps):\n")
		fmt.Printf("  mean %.2f µs, min %.2f µs, max %.2f µs — %d of %d negative (impossible)\n",
			lat.Stats.Mean()*1e6, lat.Stats.Min()*1e6, lat.Stats.Max()*1e6, lat.Negative, lat.Stats.N())
	}

	measured, err := analysis.LateSender(tr, false)
	if err != nil {
		return err
	}
	oracle, err := analysis.LateSender(tr, true)
	if err != nil {
		return err
	}
	fmt.Printf("\nLate Sender wait states:\n")
	fmt.Printf("  ground truth:  %5d instances, total %.1f µs, max %.2f µs\n",
		oracle.LateSenders, oracle.TotalWait*1e6, oracle.MaxWait*1e6)
	fmt.Printf("  from trace:    %5d instances, total %.1f µs, max %.2f µs\n",
		measured.LateSenders, measured.TotalWait*1e6, measured.MaxWait*1e6)
	if oracle.TotalWait > 0 {
		errPct := 100 * (measured.TotalWait - oracle.TotalWait) / oracle.TotalWait
		fmt.Printf("  quantification error from timestamp inaccuracy: %+.1f%%\n", errPct)
	}

	if timeline {
		s := trace.Summarize(tr)
		// render the window around the first recorded event span
		var t0 float64
		found := false
		for _, p := range tr.Procs {
			if len(p.Events) > 0 && (!found || p.Events[0].True < t0) {
				t0 = p.Events[0].True
				found = true
			}
		}
		if found {
			out, err := render.MessageTimeline(tr, t0, t0+s.SpanTrue+1e-9, 100)
			if err != nil {
				fmt.Printf("\n(no message time-line: %v)\n", err)
			} else {
				fmt.Printf("\n%s", out)
			}
		}
	}
	return nil
}
