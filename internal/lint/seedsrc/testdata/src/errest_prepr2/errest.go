// Package errest_prepr2 reconstructs the pre-PR-2 shape of
// errest.propagate for the seedsrc half of the historical check. The
// shipped bug was the map-range tie-break (maporder's fixture asserts
// that finding); the tempting repair at the time — making the tie-break
// *explicitly* random with a wall-clock-seeded generator instead of
// removing the randomness — is the failure mode seedsrc exists to stop.
// Run against this package, seedsrc flags every line of that repair.
package errest_prepr2

import (
	"math/rand"
	"sort"
	"time"
)

type line struct {
	Slope, Intercept float64
}

type fitted struct {
	line line
	w    float64
}

// tieOrder is the repair that must never ship: shuffling the tied edges
// "fairly" with entropy from the host clock. It replaces silent
// nondeterminism with configured nondeterminism — every run still
// produces a different spanning tree.
func tieOrder(keys [][2]int) {
	r := rand.New(rand.NewSource(time.Now().UnixNano())) // want `rand.New outside internal/xrand` `rand.NewSource outside internal/xrand` `NewSource seeded from the wall clock`
	r.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
}

// propagate is the post-PR-2 fix (sorted-key scan), which seedsrc and
// maporder both accept: determinism comes from ordering, not from
// re-rolling the dice.
func propagate(n int, fits map[[2]int]fitted) []line {
	keys := make([][2]int, 0, len(fits))
	for key := range fits {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	toMaster := make([]line, n)
	toMaster[0] = line{Slope: 1}
	_ = keys
	return toMaster
}
