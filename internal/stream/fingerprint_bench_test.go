package stream_test

// Overhead benchmark for the fingerprint stage: run with
//   go test ./internal/stream/ -run NONE -bench PipelineFingerprint -benchtime 3x
// and compare against BenchmarkPipelineBaseline on the same workload.

import (
	"io"
	"os"
	"testing"

	"tsync/internal/fingerprint"
	"tsync/internal/stream"
	"tsync/internal/xrand"
)

func benchPipeline(b *testing.B, fpo *fingerprint.Options) {
	spec := stream.SynthSpec{Ranks: 4, Steps: 25000, CollEvery: 10, Seed: xrand.SeedAt(fpSeed, 50)}
	dir := b.TempDir()
	path := dir + "/bench.etr"
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	init, fin, err := stream.Synth(spec, f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		b.Fatal(err)
	}
	p := stream.Pipeline{CLC: true, Fingerprint: fpo}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := os.Open(path)
		if err != nil {
			b.Fatal(err)
		}
		src, err := stream.NewSource(g)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.Run(src, io.Discard, init, fin); err != nil {
			b.Fatal(err)
		}
		g.Close()
	}
}

func BenchmarkPipelineBaseline(b *testing.B)    { benchPipeline(b, nil) }
func BenchmarkPipelineFingerprint(b *testing.B) { benchPipeline(b, &fingerprint.Options{}) }
