module tsync

go 1.24
