// Package b is the second fixture for the locked analyzer: the syntactic
// corners package a leaves out — three-clause for loops, range-assignment
// to captured variables, parenthesized/deref lvalues, pointer-typed
// WaitGroups, Add on non-WaitGroup types, and lvalues with no root
// identifier.
package b

import "sync"

// gauge has an Add method but is not a sync.WaitGroup, so Add calls on a
// captured gauge are not the Add/Wait race.
type gauge struct{ n int }

func (g *gauge) Add(d int) { g.n += d }

// ForLoopBad captures a three-clause loop's iteration variable.
func ForLoopBad(n int, out []int) {
	for j := 0; j < n; j++ {
		go func() {
			out[j] = j // want `goroutine captures loop variable "j"` `write to captured "out" inside goroutine`
		}()
	}
}

// NonLiteralGo spawns a named function: there is no literal to inspect.
func NonLiteralGo(f func()) {
	go f()
}

// RangeAssignBad range-assigns into variables declared outside the
// goroutine.
func RangeAssignBad(pairs map[int]int) (int, int) {
	var k, v int
	go func() {
		for k, v = range pairs { // want `write to captured "k" inside goroutine` `write to captured "v" inside goroutine`
			_ = v
		}
	}()
	return k, v
}

// NestedGo: the inner go statement is checked by its own visit, not by
// the outer literal's walk.
func NestedGo(out []int, x int) {
	go func() {
		go func() {
			out[0] = x // want `write to captured "out" inside goroutine`
		}()
	}()
}

// DerefBad writes through a parenthesized pointer deref rooted at a
// captured variable.
func DerefBad(p *int) {
	go func() {
		(*p) = 3 // want `write to captured "p" inside goroutine`
	}()
}

func sink() []int { return nil }

// NoRootWrite has no root identifier to blame: not reported.
func NoRootWrite() {
	go func() {
		sink()[0] = 1
	}()
}

// PtrWaitGroupBad races Add against Wait through a captured *WaitGroup.
func PtrWaitGroupBad(wg *sync.WaitGroup) {
	go func() {
		wg.Add(1) // want `sync.WaitGroup.Add inside the goroutine it accounts for`
		wg.Done()
	}()
}

// LocalWaitGroupOK: a WaitGroup declared inside the goroutine is private.
func LocalWaitGroupOK() {
	go func() {
		var wg sync.WaitGroup
		wg.Add(1)
		wg.Done()
	}()
}

// GaugeOK: Add on a captured non-WaitGroup is not the Add/Wait race.
func GaugeOK(g *gauge) {
	go func() {
		g.Add(1)
	}()
}

func wgf() *sync.WaitGroup { return new(sync.WaitGroup) }

// NoRootAdd: Add on a call result has no captured root to report.
func NoRootAdd() {
	go func() {
		wgf().Add(1)
	}()
}
