// Package exitcode pins the exit-status contract shared by every CLI in
// this repository — tracesync, tracestat, tracereplay, tsyncctl, and
// tsyncd — so scripts can branch on outcomes without parsing stderr:
//
//	0  clean: the run completed and the results are complete
//	1  error: the run failed; any output is unusable
//	3  partial: the run completed on salvaged (damaged) input — the
//	   results are real but incomplete, locally or delivered over the
//	   wire from a tsyncd session
//
// Code 2 is deliberately unused: Go's flag package exits 2 on usage
// errors, and keeping it distinct means "bad invocation" never shadows
// "partial results".
package exitcode

// The contract's three statuses.
const (
	OK      = 0
	Error   = 1
	Partial = 3
)

// From folds a run's (err, partial) outcome into its exit status: an
// error always dominates (failed runs must not masquerade as partial
// successes), then partiality, then success.
func From(err error, partial bool) int {
	switch {
	case err != nil:
		return Error
	case partial:
		return Partial
	}
	return OK
}
