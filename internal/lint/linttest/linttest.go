// Package linttest is a self-contained analogue of
// golang.org/x/tools/go/analysis/analysistest, built because this
// repository vendors only the subset of x/tools that the Go toolchain
// ships for `go vet` (analysistest and its go/packages dependency are not
// in that subset, and the build environment is offline).
//
// It follows the analysistest conventions: fixture packages live under
// testdata/src/<importpath>/ next to the test, and expected diagnostics
// are declared in the fixture source with trailing comments of the form
//
//	x = ev.Time // want `regexp` `another regexp`
//
// Each regexp must match the message of a diagnostic reported on that
// line; diagnostics without a matching expectation, and expectations
// without a matching diagnostic, fail the test. Fixture imports resolve
// first against testdata/src (so fixtures can model repo packages like
// tsync/internal/trace) and fall back to the source importer for the
// standard library.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// reporter is the slice of *testing.T that linttest needs; it exists so
// the harness can be tested against a recorder instead of failing the
// real test.
type reporter interface {
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// Run loads each fixture package under testdata/src and checks the
// analyzer's diagnostics against the // want expectations in the fixture
// source. It is the linttest counterpart of analysistest.Run.
func Run(t *testing.T, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	run(t, a, pkgPaths...)
}

func run(t reporter, a *analysis.Analyzer, pkgPaths ...string) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatalf("linttest: getwd: %v", err)
	}
	ld := newLoader(filepath.Join(wd, "testdata", "src"))
	for _, path := range pkgPaths {
		pkg, err := ld.load(path)
		if err != nil {
			t.Errorf("linttest: loading %s: %v", path, err)
			continue
		}
		diags, err := runAnalyzer(a, ld, pkg, map[*analysis.Analyzer]any{})
		if err != nil {
			t.Errorf("linttest: running %s on %s: %v", a.Name, path, err)
			continue
		}
		checkExpectations(t, ld, pkg, diags)
	}
}

// loadedPkg is one type-checked fixture package.
type loadedPkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// loader resolves and memoizes fixture packages rooted at testdata/src,
// deferring to the source importer for everything else (stdlib).
type loader struct {
	root    string
	fset    *token.FileSet
	pkgs    map[string]*loadedPkg
	fallbak types.ImporterFrom
}

func newLoader(root string) *loader {
	fset := token.NewFileSet()
	return &loader{
		root:    root,
		fset:    fset,
		pkgs:    map[string]*loadedPkg{},
		fallbak: importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
}

// Import implements types.Importer over the fixture tree.
func (l *loader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(l.root, filepath.FromSlash(path)); dirExists(dir) {
		lp, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return lp.pkg, nil
	}
	return l.fallbak.Import(path)
}

func (l *loader) load(path string) (*loadedPkg, error) {
	if lp, ok := l.pkgs[path]; ok {
		return lp, nil
	}
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking: %v", err)
	}
	lp := &loadedPkg{pkg: pkg, files: files, info: info}
	l.pkgs[path] = lp
	return lp, nil
}

// runAnalyzer executes a (and, recursively, its Requires) over pkg and
// returns the diagnostics a itself reported. results memoizes prerequisite
// results per package so shared deps like the inspect pass run once.
func runAnalyzer(a *analysis.Analyzer, ld *loader, pkg *loadedPkg, results map[*analysis.Analyzer]any) ([]analysis.Diagnostic, error) {
	var diags []analysis.Diagnostic
	for _, req := range a.Requires {
		if _, done := results[req]; done {
			continue
		}
		if _, err := runAnalyzer(req, ld, pkg, results); err != nil {
			return nil, fmt.Errorf("prerequisite %s: %v", req.Name, err)
		}
	}
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       ld.fset,
		Files:      pkg.files,
		Pkg:        pkg.pkg,
		TypesInfo:  pkg.info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf:   map[*analysis.Analyzer]any{},
		Report:     func(d analysis.Diagnostic) { diags = append(diags, d) },
		ReadFile:   os.ReadFile,

		// The domain analyzers use no facts; stub the API so an
		// accidental use fails loudly instead of silently.
		ImportObjectFact:  func(types.Object, analysis.Fact) bool { panic("linttest: facts unsupported") },
		ImportPackageFact: func(*types.Package, analysis.Fact) bool { panic("linttest: facts unsupported") },
		ExportObjectFact:  func(types.Object, analysis.Fact) { panic("linttest: facts unsupported") },
		ExportPackageFact: func(analysis.Fact) { panic("linttest: facts unsupported") },
		AllPackageFacts:   func() []analysis.PackageFact { return nil },
		AllObjectFacts:    func() []analysis.ObjectFact { return nil },
	}
	for _, req := range a.Requires {
		pass.ResultOf[req] = results[req]
	}
	res, err := a.Run(pass)
	if err != nil {
		return nil, err
	}
	results[a] = res
	return diags, nil
}

// expectation is one // want regexp at a file line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
}

// wantRE extracts quoted or backquoted regexps after "// want".
var wantArgRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// checkExpectations cross-matches diagnostics against // want comments.
func checkExpectations(t reporter, ld *loader, pkg *loadedPkg, diags []analysis.Diagnostic) {
	var wants []*expectation
	for _, f := range pkg.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := ld.fset.Position(c.Pos())
				for _, arg := range wantArgRE.FindAllString(text[len("want "):], -1) {
					pat := arg[1 : len(arg)-1]
					if arg[0] == '"' {
						pat = strings.ReplaceAll(pat, `\"`, `"`)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %s: %v", pos.Filename, pos.Line, arg, err)
						continue
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: arg})
				}
			}
		}
	}
	matched := make([]bool, len(wants))
	for _, d := range diags {
		pos := ld.fset.Position(d.Pos)
		ok := false
		for i, w := range wants {
			if !matched[i] && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: no diagnostic matching %s", w.file, w.line, w.raw)
		}
	}
}

func dirExists(dir string) bool {
	fi, err := os.Stat(dir)
	return err == nil && fi.IsDir()
}
