package backoff_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"tsync/internal/backoff"
)

// TestDeterministic: equal (policy, seed) pairs yield identical delay
// sequences; different seeds diverge.
func TestDeterministic(t *testing.T) {
	pol := backoff.Default()
	a := backoff.New(pol, 7)
	b := backoff.New(pol, 7)
	c := backoff.New(pol, 8)
	same, diff := true, false
	for i := 0; i < 32; i++ {
		av, bv, cv := a.Next(), b.Next(), c.Next()
		if av != bv {
			same = false
		}
		if av != cv {
			diff = true
		}
	}
	if !same {
		t.Error("equal seeds produced different delay sequences")
	}
	if !diff {
		t.Error("different seeds produced identical delay sequences (jitter not seeded?)")
	}
}

// TestExponentialShape: without jitter the sequence is exactly
// Base·Factor^n, capped.
func TestExponentialShape(t *testing.T) {
	b := backoff.New(backoff.Policy{Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond, Factor: 2}, 1)
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		if got := b.Next(); got != w*time.Millisecond {
			t.Errorf("delay %d = %v, want %v", i, got, w*time.Millisecond)
		}
	}
	if got := b.Attempt(); got != len(want) {
		t.Errorf("Attempt() = %d, want %d", got, len(want))
	}
	b.Reset()
	if got := b.Next(); got != 10*time.Millisecond {
		t.Errorf("first delay after Reset = %v, want 10ms", got)
	}
}

// TestCapAndJitterBounds: every jittered delay stays inside
// [0, Cap] and inside the ±Jitter band of its nominal value.
func TestCapAndJitterBounds(t *testing.T) {
	pol := backoff.Policy{Base: 3 * time.Millisecond, Cap: 50 * time.Millisecond, Factor: 3, Jitter: 0.5}
	b := backoff.New(pol, 42)
	nominal := float64(pol.Base)
	for i := 0; i < 64; i++ {
		d := b.Next()
		if d < 0 || d > pol.Cap {
			t.Fatalf("delay %d = %v escapes [0, %v]", i, d, pol.Cap)
		}
		n := nominal
		if n > float64(pol.Cap) {
			n = float64(pol.Cap)
		}
		if float64(d) < n*(1-pol.Jitter)-1 {
			t.Fatalf("delay %d = %v below the jitter band of %v", i, d, time.Duration(n))
		}
		nominal *= pol.Factor
	}
}

// TestOverflowSafety: a huge attempt count must not overflow into
// negative delays even with no cap.
func TestOverflowSafety(t *testing.T) {
	b := backoff.New(backoff.Policy{Base: time.Second, Factor: 2}, 3)
	var last time.Duration
	for i := 0; i < 80; i++ {
		last = b.Next()
		if last < 0 {
			t.Fatalf("delay %d = %v is negative (overflow)", i, last)
		}
	}
}

// TestJitterClamped: out-of-range jitter values are clamped instead of
// producing negative or amplified delays.
func TestJitterClamped(t *testing.T) {
	b := backoff.New(backoff.Policy{Base: 10 * time.Millisecond, Cap: time.Second, Factor: 2, Jitter: 5}, 9)
	for i := 0; i < 16; i++ {
		if d := b.Next(); d < 0 || d > time.Second {
			t.Fatalf("delay %d = %v escapes [0, 1s] under clamped jitter", i, d)
		}
	}
}

// TestRetrySchedule: Retry calls fn until success, sleeping the
// sequence's delays in between, and reports success.
func TestRetrySchedule(t *testing.T) {
	b := backoff.New(backoff.Policy{Base: 5 * time.Millisecond, Factor: 2}, 11)
	var slept []time.Duration
	sleep := func(_ context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}
	calls := 0
	err := backoff.Retry(context.Background(), b, 10, sleep, nil, func() error {
		calls++
		if calls < 4 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Retry: %v", err)
	}
	if calls != 4 {
		t.Errorf("fn called %d times, want 4", calls)
	}
	if len(slept) != 3 {
		t.Fatalf("slept %d times, want 3", len(slept))
	}
	if slept[0] != 5*time.Millisecond || slept[1] != 10*time.Millisecond || slept[2] != 20*time.Millisecond {
		t.Errorf("sleep schedule = %v, want [5ms 10ms 20ms]", slept)
	}
}

// TestRetryExhausted: the last error surfaces when attempts run out,
// with exactly attempts calls and attempts-1 sleeps.
func TestRetryExhausted(t *testing.T) {
	b := backoff.New(backoff.Policy{Base: time.Millisecond, Factor: 2}, 12)
	sentinel := errors.New("still down")
	calls, sleeps := 0, 0
	err := backoff.Retry(context.Background(), b, 3,
		func(context.Context, time.Duration) error { sleeps++; return nil },
		nil,
		func() error { calls++; return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("Retry: got %v, want the fn error", err)
	}
	if calls != 3 || sleeps != 2 {
		t.Errorf("calls=%d sleeps=%d, want 3 and 2", calls, sleeps)
	}
}

// TestRetryPermanent: a permanent error stops the loop immediately.
func TestRetryPermanent(t *testing.T) {
	b := backoff.New(backoff.Default(), 13)
	fatal := errors.New("bad request")
	calls := 0
	err := backoff.Retry(context.Background(), b, 10,
		func(context.Context, time.Duration) error { t.Fatal("slept after a permanent error"); return nil },
		func(err error) bool { return errors.Is(err, fatal) },
		func() error { calls++; return fatal })
	if !errors.Is(err, fatal) || calls != 1 {
		t.Fatalf("got (%v, %d calls), want (permanent error, 1 call)", err, calls)
	}
}

// TestRetryContextCancel: cancellation mid-wait stops the loop with the
// last attempt's error; cancellation before the first attempt returns
// ctx.Err().
func TestRetryContextCancel(t *testing.T) {
	b := backoff.New(backoff.Default(), 14)
	transient := errors.New("transient")
	ctx, cancel := context.WithCancel(context.Background())
	err := backoff.Retry(ctx, b, 10,
		func(context.Context, time.Duration) error { cancel(); return context.Canceled },
		nil,
		func() error { return transient })
	if !errors.Is(err, transient) {
		t.Fatalf("cancel mid-wait: got %v, want the last fn error", err)
	}

	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	err = backoff.Retry(pre, backoff.New(backoff.Default(), 15), 10, nil, nil, func() error {
		t.Fatal("fn ran under a canceled context")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled Retry: got %v, want context.Canceled", err)
	}
}

// TestSleep: zero and negative delays return immediately; a canceled
// context interrupts a pending wait.
func TestSleep(t *testing.T) {
	if err := backoff.Sleep(context.Background(), 0); err != nil {
		t.Errorf("Sleep(0): %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := backoff.Sleep(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled Sleep: got %v, want context.Canceled", err)
	}
	if err := backoff.Sleep(context.Background(), time.Microsecond); err != nil {
		t.Errorf("tiny Sleep: %v", err)
	}
}
