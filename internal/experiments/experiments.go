// Package experiments contains one driver per table and figure of the
// paper's evaluation (Section IV), plus the Section V ablation comparing
// correction methods. Each driver is a pure function of its configuration
// and returns structured results; the cmd/ binaries, the examples and the
// benchmark harness all consume these drivers, so the printed rows always
// come from the same code path as the tests. See DESIGN.md §4 for the
// experiment index and EXPERIMENTS.md for paper-vs-measured values.
package experiments

import (
	"fmt"
	"sort"

	"tsync/internal/analysis"
	"tsync/internal/apps"
	"tsync/internal/clc"
	"tsync/internal/clock"
	"tsync/internal/errest"
	"tsync/internal/interp"
	"tsync/internal/lclock"
	"tsync/internal/measure"
	"tsync/internal/mpi"
	"tsync/internal/omp"
	"tsync/internal/runner"
	"tsync/internal/topology"
	"tsync/internal/trace"
	"tsync/internal/xrand"
)

// Correction names a timestamp correction strategy.
type Correction string

// Correction strategies accepted by the drivers.
const (
	CorrectNone   Correction = "none"
	CorrectAlign  Correction = "align"
	CorrectInterp Correction = "interp"
	// CorrectPiecewise uses additional offset measurements during the
	// run (ClockStudyConfig.MidMeasurements) and interpolates piecewise
	// between them — the Doleschal-style extension of Section III.b.
	CorrectPiecewise Correction = "piecewise"
)

// ClockStudyConfig drives the deviation experiments of Figs. 4, 5 and 6.
type ClockStudyConfig struct {
	Machine  topology.Machine
	Timer    clock.Kind
	Duration float64 // run length in simulated seconds (300/1800/3600)
	Interval float64 // sample spacing of the series
	// Procs is the number of simulated processes, one per node (Table I
	// inter-node setup). Not to be confused with the Workers pool bound of
	// the repetition-loop drivers: a ClockStudy is a single simulation.
	Procs      int
	Correction Correction
	Reps       int // Cristian probes per offset measurement
	Seed       uint64
	// Measured samples through noisy clock reads instead of the ideal
	// drift trajectories (used by the intra-node noise study).
	Measured bool
	// Pinning overrides the default inter-node placement, e.g. for the
	// intra-node studies (inter-chip, inter-core).
	Pinning topology.Pinning
	// MidMeasurements inserts this many extra offset measurements evenly
	// spaced during the run (only used by CorrectPiecewise; the paper
	// notes mid-run measurements are normally avoided "not to perturb
	// the program").
	MidMeasurements int
}

// ClockStudyResult is a sampled deviation series plus the latency context
// needed to judge it against the clock condition.
type ClockStudyResult struct {
	Series      analysis.Series
	HalfLatency float64 // half the minimal latency between the processes
	// FirstExceed is the earliest time |deviation| crosses HalfLatency
	// (valid if Exceeded).
	FirstExceed float64
	Exceeded    bool
}

// ClockStudy measures residual clock deviations between one master and
// n-1 workers after the chosen correction, mirroring the methodology of
// Section IV: offsets are measured at initialization and finalization with
// Cristian probes, the correction is built from those measurements, and
// the deviation of the corrected clocks is sampled over the run.
func ClockStudy(cfg ClockStudyConfig) (*ClockStudyResult, error) {
	if cfg.Procs < 2 {
		return nil, fmt.Errorf("experiments: ClockStudy needs at least 2 processes, got %d", cfg.Procs)
	}
	if cfg.Duration <= 0 || cfg.Interval <= 0 {
		return nil, fmt.Errorf("experiments: non-positive duration or interval")
	}
	if cfg.Reps == 0 {
		cfg.Reps = 20
	}
	pin := cfg.Pinning
	var err error
	if pin == nil {
		pin, err = topology.InterNode(cfg.Machine, cfg.Procs)
		if err != nil {
			return nil, err
		}
	}
	w, err := mpi.NewWorld(mpi.Config{
		Machine: cfg.Machine, Timer: cfg.Timer, Pinning: pin, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	mids := 0
	if cfg.Correction == CorrectPiecewise {
		mids = cfg.MidMeasurements
		if mids <= 0 {
			mids = 3
		}
	}
	var tables [][]measure.Offset
	var measureErr error
	err = w.Run(func(r *mpi.Rank) {
		record := func() bool {
			tab, err := measure.Offsets(r, cfg.Reps)
			if err != nil {
				measureErr = err
				return false
			}
			if r.Rank() == 0 {
				tables = append(tables, tab)
			}
			return true
		}
		if !record() {
			return
		}
		chunk := cfg.Duration / float64(mids+1)
		for k := 0; k < mids; k++ {
			r.Compute(chunk)
			if !record() {
				return
			}
		}
		r.Compute(chunk)
		if !record() {
			return
		}
	})
	if err != nil {
		return nil, err
	}
	if measureErr != nil {
		return nil, measureErr
	}
	init, fin := tables[0], tables[len(tables)-1]
	var corr *interp.Correction
	switch cfg.Correction {
	case CorrectNone, "":
		corr = interp.Identity(len(pin))
	case CorrectAlign:
		corr, err = interp.AlignOnly(init)
	case CorrectInterp:
		corr, err = interp.Linear(init, fin)
	case CorrectPiecewise:
		corr, err = interp.Piecewise(tables...)
	default:
		return nil, fmt.Errorf("experiments: unknown correction %q", cfg.Correction)
	}
	if err != nil {
		return nil, err
	}
	clocks := make([]*clock.Clock, len(pin))
	for i, core := range pin {
		if cfg.Measured {
			// fresh readers: the ranks' own readers have monotonic
			// state beyond the sampling window
			clocks[i], err = w.Cluster().NewReader(core, "postmortem")
		} else {
			clocks[i], err = w.Cluster().Clock(core)
		}
		if err != nil {
			return nil, err
		}
	}
	var series analysis.Series
	if cfg.Measured {
		series, err = analysis.DeviationSeriesMeasured(clocks, corr, cfg.Duration, cfg.Interval)
	} else {
		series, err = analysis.DeviationSeries(clocks, corr, cfg.Duration, cfg.Interval)
	}
	if err != nil {
		return nil, err
	}
	half := w.Trace().MinLatency[topology.Relate(pin[0], pin[1])] / 2
	res := &ClockStudyResult{Series: series, HalfLatency: half}
	res.FirstExceed, res.Exceeded = series.FirstExceeds(half)
	return res, nil
}

// Fig4Config returns the configuration of one panel of Fig. 4 (deviations
// after offset alignment only): panel "a" (MPI_Wtime, short run), "b"
// (gettimeofday, medium run), "c" (TSC, long run).
func Fig4Config(panel string, seed uint64) (ClockStudyConfig, error) {
	base := ClockStudyConfig{
		Machine:    topology.Xeon(),
		Procs:      4,
		Correction: CorrectAlign,
		Interval:   5,
		Seed:       seed,
	}
	switch panel {
	case "a":
		base.Timer, base.Duration = clock.MPIWtime, 300
		base.Interval = 1
	case "b":
		base.Timer, base.Duration = clock.Gettimeofday, 1800
	case "c":
		base.Timer, base.Duration = clock.TSC, 3600
	default:
		return ClockStudyConfig{}, fmt.Errorf("experiments: Fig. 4 has panels a, b, c; got %q", panel)
	}
	return base, nil
}

// Fig5Config returns the configuration of one panel of Fig. 5 (deviations
// after linear interpolation, 3600 s): "a" Xeon/TSC, "b" PowerPC/TB,
// "c" Opteron/gettimeofday.
func Fig5Config(panel string, seed uint64) (ClockStudyConfig, error) {
	base := ClockStudyConfig{
		Procs:      4,
		Correction: CorrectInterp,
		Duration:   3600,
		Interval:   5,
		Seed:       seed,
	}
	switch panel {
	case "a":
		base.Machine, base.Timer = topology.Xeon(), clock.TSC
	case "b":
		base.Machine, base.Timer = topology.PowerPC(), clock.TB
	case "c":
		base.Machine, base.Timer = topology.Opteron(), clock.Gettimeofday
	default:
		return ClockStudyConfig{}, fmt.Errorf("experiments: Fig. 5 has panels a, b, c; got %q", panel)
	}
	return base, nil
}

// Fig6Config returns the Fig. 6 configuration: a short (300 s) Xeon/TSC
// run after linear interpolation, where deviations still slightly exceed
// the latency bound.
func Fig6Config(seed uint64) ClockStudyConfig {
	return ClockStudyConfig{
		Machine:    topology.Xeon(),
		Timer:      clock.TSC,
		Procs:      4,
		Correction: CorrectInterp,
		Duration:   300,
		Interval:   1,
		Seed:       seed,
	}
}

// LatencyRow is one row of Table II.
type LatencyRow struct {
	Name   string
	Result measure.LatencyResult
}

// LatencyStudy reproduces Table II on a machine: inter-node, inter-chip
// and inter-core message latencies plus the inter-node collective latency,
// using the Table I pinnings.
func LatencyStudy(m topology.Machine, timer clock.Kind, reps int, seed uint64) ([]LatencyRow, error) {
	if reps <= 0 {
		reps = 1000
	}
	type setup struct {
		name string
		pin  func() (topology.Pinning, error)
		coll bool
	}
	setups := []setup{
		{"Inter node message latency", func() (topology.Pinning, error) { return topology.InterNode(m, 2) }, false},
		{"Inter chip message latency", func() (topology.Pinning, error) { return topology.InterChip(m, 2) }, false},
		{"Inter core message latency", func() (topology.Pinning, error) { return topology.InterCore(m, 2) }, false},
		{"Inter node collective latency", func() (topology.Pinning, error) { return topology.InterNode(m, 4) }, true},
	}
	var rows []LatencyRow
	for _, s := range setups {
		pin, err := s.pin()
		if err != nil {
			// machines with one chip per node skip the inter-chip row
			continue
		}
		w, err := mpi.NewWorld(mpi.Config{Machine: m, Timer: timer, Pinning: pin, Seed: seed})
		if err != nil {
			return nil, err
		}
		var res measure.LatencyResult
		var inner error
		err = w.Run(func(r *mpi.Rank) {
			var got measure.LatencyResult
			var err error
			if s.coll {
				// collectives cost ~4 messages each, so run a quarter of the
				// ping-pong reps — but never zero: reps in 1..3 used to pass
				// reps/4 == 0 straight into Collective, which rejects it
				collReps := reps / 4
				if collReps < 1 {
					collReps = 1
				}
				got, err = measure.Collective(r, collReps, 8)
			} else {
				got, err = measure.PingPong(r, reps, 0)
			}
			if err != nil {
				inner = err
				return
			}
			if r.Rank() == 0 {
				res = got
			}
		})
		if err != nil {
			return nil, err
		}
		if inner != nil {
			return nil, inner
		}
		rows = append(rows, LatencyRow{Name: s.name, Result: res})
	}
	return rows, nil
}

// AppKind selects the Fig. 7 application.
type AppKind string

// The two applications of Fig. 7.
const (
	AppPOP AppKind = "pop"
	AppSMG AppKind = "smg"
)

// AppViolationsConfig drives the Fig. 7 experiment.
type AppViolationsConfig struct {
	App     AppKind
	Machine topology.Machine
	Timer   clock.Kind
	Ranks   int
	Reps    int // repetitions averaged (the paper used 3)
	Seed    uint64
	// Scale multiplies the workload durations; 1.0 is the scaled default
	// (~25 simulated minutes for POP).
	Scale float64
	// Workers bounds how many repetitions run concurrently; <= 0 uses all
	// CPUs. Results are bit-identical for every worker count (see
	// internal/runner).
	Workers int
}

// AppViolationsResult aggregates a Fig. 7 bar pair plus context.
type AppViolationsResult struct {
	App                AppKind
	PctReversed        float64 // % messages with send/receive order reversed
	PctReversedLogical float64
	PctMessageEvents   float64 // % message transfer events of all events
	Census             analysis.Census
	// Trace is the interpolation-corrected trace from the last
	// repetition; RawTrace holds the same run's uncorrected timestamps
	// (what CompareCorrections and other ablations should start from).
	Trace    *trace.Trace
	RawTrace *trace.Trace
	// InitOffsets and FinOffsets from the last repetition.
	InitOffsets, FinOffsets []measure.Offset
}

// appRep is the outcome of one AppViolations repetition.
type appRep struct {
	pctRev, pctRevLog, pctMsgEv float64
	census                      analysis.Census
	corrected, raw              *trace.Trace
	init, fin                   []measure.Offset
}

// appViolationsRep traces and corrects one repetition. All randomness is
// derived from seed, so repetitions are independent tasks for the runner.
func appViolationsRep(cfg AppViolationsConfig, seed uint64) (appRep, error) {
	var out appRep
	pin, err := topology.Scheduled(cfg.Machine, cfg.Ranks, xrand.NewSource(seed^0x5bd1e995))
	if err != nil {
		return out, err
	}
	w, err := mpi.NewWorld(mpi.Config{Machine: cfg.Machine, Timer: cfg.Timer, Pinning: pin, Seed: seed})
	if err != nil {
		return out, err
	}
	var body func(*mpi.Rank)
	switch cfg.App {
	case AppPOP:
		px, py := grid2D(cfg.Ranks)
		pop := apps.DefaultPOP(px, py)
		pop.Seed = seed
		pop.StepTime *= cfg.Scale
		body = apps.POP(pop)
	case AppSMG:
		smg := apps.DefaultSMG()
		smg.Seed = seed
		smg.IdleBefore *= cfg.Scale
		smg.IdleAfter *= cfg.Scale
		body = apps.SMG(smg)
	default:
		return out, fmt.Errorf("experiments: unknown app %q", cfg.App)
	}
	var init, fin []measure.Offset
	var inner error
	err = w.Run(func(r *mpi.Rank) {
		i1, err := measure.Offsets(r, 20)
		if err != nil {
			inner = err
			return
		}
		body(r)
		f1, err := measure.Offsets(r, 20)
		if err != nil {
			inner = err
			return
		}
		if r.Rank() == 0 {
			init, fin = i1, f1
		}
	})
	if err != nil {
		return out, err
	}
	if inner != nil {
		return out, inner
	}
	corr, err := interp.Linear(init, fin)
	if err != nil {
		return out, err
	}
	corrected := corr.Apply(w.Trace())
	census, err := analysis.CensusOf(corrected)
	if err != nil {
		return out, err
	}
	return appRep{
		pctRev:    census.PctReversed(),
		pctRevLog: census.PctReversedLogical(),
		pctMsgEv:  census.PctMessageEvents(),
		census:    census,
		corrected: corrected,
		raw:       w.Trace(),
		init:      init,
		fin:       fin,
	}, nil
}

// AppViolations traces the application with Scalasca-style methodology
// (offsets at MPI_Init/MPI_Finalize, linear interpolation postmortem) and
// counts clock-condition violations, averaged over Reps repetitions.
// Repetitions run on a bounded worker pool (cfg.Workers); each derives its
// seed from its repetition index, and the averages are reduced in
// repetition order, so the result is bit-identical for every worker count.
func AppViolations(cfg AppViolationsConfig) (*AppViolationsResult, error) {
	if cfg.Ranks <= 1 {
		return nil, fmt.Errorf("experiments: AppViolations needs >1 ranks")
	}
	if cfg.Reps <= 0 {
		cfg.Reps = 3
	}
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	reps, err := runner.Map(runner.New(cfg.Workers), cfg.Reps, func(rep int) (appRep, error) {
		return appViolationsRep(cfg, runner.Seed(cfg.Seed, rep))
	})
	if err != nil {
		return nil, err
	}
	out := &AppViolationsResult{App: cfg.App}
	var sumRev, sumRevLog, sumMsgEv float64
	for _, r := range reps {
		sumRev += r.pctRev
		sumRevLog += r.pctRevLog
		sumMsgEv += r.pctMsgEv
	}
	last := reps[len(reps)-1]
	out.Census = last.census
	out.Trace = last.corrected
	out.RawTrace = last.raw
	out.InitOffsets, out.FinOffsets = last.init, last.fin
	out.PctReversed = sumRev / float64(cfg.Reps)
	out.PctReversedLogical = sumRevLog / float64(cfg.Reps)
	out.PctMessageEvents = sumMsgEv / float64(cfg.Reps)
	return out, nil
}

// grid2D factors n into the most square Px x Py grid.
func grid2D(n int) (int, int) {
	best := 1
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			best = d
		}
	}
	return n / best, best
}

// OMPStudyConfig drives the Fig. 8 experiment.
type OMPStudyConfig struct {
	Machine topology.Machine
	Timer   clock.Kind
	Threads int
	Regions int
	Reps    int
	Seed    uint64
	// WorkTime is the mean loop-body duration per thread.
	WorkTime float64
	// Correct applies a correction before the census, answering the
	// question the paper leaves open for OpenMP: "" or "none" (the
	// paper's setup), "align" (intra-node offset measurement +
	// alignment), or "clc" (the shared-memory controlled logical clock).
	Correct string
	// Workers bounds how many repetitions run concurrently; <= 0 uses all
	// CPUs. Results are bit-identical for every worker count.
	Workers int
}

// OMPStudyResult is one group of Fig. 8 bars.
type OMPStudyResult struct {
	Threads    int
	PctAny     float64
	PctEntry   float64
	PctExit    float64
	PctBarrier float64
	// Trace from the last repetition, for Fig. 3 time-line rendering.
	Trace *trace.Trace
}

// ompRep is the outcome of one OMPStudy repetition.
type ompRep struct {
	pcts [4]float64
	tr   *trace.Trace
}

// ompStudyRep runs and classifies one repetition from its derived seed.
func ompStudyRep(cfg OMPStudyConfig, seed uint64) (ompRep, error) {
	var out ompRep
	tm, err := omp.NewTeam(omp.Config{
		Machine: cfg.Machine,
		Timer:   cfg.Timer,
		Threads: cfg.Threads,
		Seed:    seed,
	})
	if err != nil {
		return out, err
	}
	work := xrand.NewSource(seed ^ 0x2545f491)
	tr, err := tm.RunParallelFor("parallel-for", cfg.Regions, func(thread, region int) float64 {
		return cfg.WorkTime * (1 + 0.2*work.Float64())
	})
	if err != nil {
		return out, err
	}
	switch cfg.Correct {
	case "", "none":
	case "align":
		offsets, err := tm.MeasureOffsets(20)
		if err != nil {
			return out, err
		}
		corr, err := interp.AlignOnly(offsets)
		if err != nil {
			return out, err
		}
		tr = corr.Apply(tr)
	case "clc":
		opts := clc.DefaultOptions()
		opts.SharedMemory = true
		corrected, _, err := clc.Correct(tr, opts)
		if err != nil {
			return out, err
		}
		tr = corrected
	default:
		return out, fmt.Errorf("experiments: unknown OMP correction %q", cfg.Correct)
	}
	census, err := analysis.POMPCensusOf(tr)
	if err != nil {
		return out, err
	}
	out.pcts[0], out.pcts[1], out.pcts[2], out.pcts[3] = census.Pct()
	out.tr = tr
	return out, nil
}

// OMPStudy runs the OpenMP parallel-for benchmark with the given thread
// count and classifies POMP violations per region, averaged over Reps
// repetitions. No offset alignment or interpolation is applied, matching
// the paper. Repetitions run on a bounded worker pool (cfg.Workers) with
// index-derived seeds and an in-order reduction, so the result is
// bit-identical for every worker count.
func OMPStudy(cfg OMPStudyConfig) (*OMPStudyResult, error) {
	if cfg.Threads < 1 {
		return nil, fmt.Errorf("experiments: OMPStudy needs at least one thread")
	}
	if cfg.Regions <= 0 {
		cfg.Regions = 100
	}
	if cfg.Reps <= 0 {
		cfg.Reps = 3
	}
	if cfg.WorkTime <= 0 {
		cfg.WorkTime = 5e-6
	}
	reps, err := runner.Map(runner.New(cfg.Workers), cfg.Reps, func(rep int) (ompRep, error) {
		return ompStudyRep(cfg, runner.Seed(cfg.Seed, rep))
	})
	if err != nil {
		return nil, err
	}
	out := &OMPStudyResult{Threads: cfg.Threads}
	var sums [4]float64
	for _, r := range reps {
		for i, v := range r.pcts {
			sums[i] += v
		}
	}
	out.Trace = reps[len(reps)-1].tr
	f := 1 / float64(cfg.Reps)
	out.PctAny, out.PctEntry, out.PctExit, out.PctBarrier = sums[0]*f, sums[1]*f, sums[2]*f, sums[3]*f
	return out, nil
}

// MethodResult is one row of the Section V correction ablation.
type MethodResult struct {
	Method     string
	Violations int
	// Distortion of local intervals relative to the uncorrected trace.
	Distortion analysis.Distortion
	Err        error
}

// CompareCorrections applies every correction strategy in the repository
// to a traced run and reports remaining clock-condition violations and
// interval distortion: no correction, offset alignment, linear
// interpolation, the three error-estimation baselines, and CLC (on top of
// interpolation, which is how the paper recommends deploying it).
//
// The methods are independent of each other (each starts from the raw
// trace; corrections never mutate their input), so they run as tasks on a
// bounded worker pool. Rows come back in the fixed method order above for
// any worker count. workers <= 0 uses all CPUs.
func CompareCorrections(raw *trace.Trace, init, fin []measure.Offset, workers int) ([]MethodResult, error) {
	if raw == nil {
		return nil, fmt.Errorf("experiments: nil trace")
	}
	gamma := clc.DefaultOptions().Gamma
	type method struct {
		name  string
		apply func() (*trace.Trace, error)
	}
	methods := []method{
		{"none", func() (*trace.Trace, error) { return raw, nil }},
		{"align", func() (*trace.Trace, error) {
			align, err := interp.AlignOnly(init)
			if err != nil {
				return nil, err
			}
			return align.Apply(raw), nil
		}},
		{"interp", func() (*trace.Trace, error) {
			linear, err := interp.Linear(init, fin)
			if err != nil {
				return nil, err
			}
			return linear.Apply(raw), nil
		}},
	}
	for _, m := range []errest.Method{errest.Regression, errest.ConvexHull, errest.MinMax} {
		methods = append(methods, method{m.String(), func() (*trace.Trace, error) {
			corr, err := errest.Estimate(raw, m)
			if err != nil {
				return nil, err
			}
			return corr.Apply(raw), nil
		}})
	}
	// the pure logical-clock baseline: restores order by construction but
	// destroys every interval (Section V, Lamport); the tick must exceed
	// the largest l_min so the γ-scaled condition holds on every edge
	methods = append(methods, method{"lamport", func() (*trace.Trace, error) {
		return lclock.LamportSchedule(raw, 5e-6)
	}})
	// CLC runs on top of interpolation when the offset tables allow it
	// (how the paper recommends deploying it), on the raw trace otherwise.
	// The row name is decided up front so it is stable across worker
	// counts: building the correction is cheap, only Apply walks events.
	clcName := "clc"
	if _, err := interp.Linear(init, fin); err == nil {
		clcName = "interp+clc"
	}
	methods = append(methods, method{clcName, func() (*trace.Trace, error) {
		base := raw
		if linear, err := interp.Linear(init, fin); err == nil {
			base = linear.Apply(raw)
		}
		corrected, _, err := clc.CorrectParallel(base, clc.DefaultOptions())
		return corrected, err
	}})
	// per-method failures are reported in the row, as in the serial
	// version, so one broken baseline never hides the others
	return runner.Map(runner.New(workers), len(methods), func(i int) (MethodResult, error) {
		mr := MethodResult{Method: methods[i].name}
		t, err := methods[i].apply()
		if err != nil {
			mr.Err = err
			return mr, nil
		}
		v, err := clc.Violations(t, gamma)
		if err != nil {
			mr.Err = err
			return mr, nil
		}
		mr.Violations = v
		d, err := analysis.DistortionBetween(raw, t)
		if err != nil {
			mr.Err = err
			return mr, nil
		}
		mr.Distortion = d
		return mr, nil
	})
}

// WaitStateImpact quantifies how timestamp errors distort a Scalasca-style
// wait-state analysis (the false-conclusions concern of Section III): it
// compares the Late Sender waiting time computed from the simulation's
// true event times (ground truth) against the same analysis on measured
// timestamps after linear interpolation, and after interpolation + CLC.
type WaitStateImpact struct {
	Oracle    analysis.WaitStats
	Raw       analysis.WaitStats // from uncorrected timestamps
	Measured  analysis.WaitStats // after linear interpolation
	Corrected analysis.WaitStats // after interpolation + CLC
	// RawErrPct, MeasuredErrPct and CorrectedErrPct are the relative
	// errors of the total waiting time vs. the oracle, in percent.
	RawErrPct       float64
	MeasuredErrPct  float64
	CorrectedErrPct float64
}

// WaitStateStudy computes the impact on a raw measurement.
func WaitStateStudy(raw *trace.Trace, init, fin []measure.Offset) (*WaitStateImpact, error) {
	if raw == nil {
		return nil, fmt.Errorf("experiments: nil trace")
	}
	out := &WaitStateImpact{}
	var err error
	if out.Oracle, err = analysis.LateSender(raw, true); err != nil {
		return nil, err
	}
	if out.Raw, err = analysis.LateSender(raw, false); err != nil {
		return nil, err
	}
	corr, err := interp.Linear(init, fin)
	if err != nil {
		return nil, err
	}
	interpolated := corr.Apply(raw)
	if out.Measured, err = analysis.LateSender(interpolated, false); err != nil {
		return nil, err
	}
	fixed, _, err := clc.CorrectParallel(interpolated, clc.DefaultOptions())
	if err != nil {
		return nil, err
	}
	if out.Corrected, err = analysis.LateSender(fixed, false); err != nil {
		return nil, err
	}
	if out.Oracle.TotalWait > 0 {
		out.RawErrPct = 100 * (out.Raw.TotalWait - out.Oracle.TotalWait) / out.Oracle.TotalWait
		out.MeasuredErrPct = 100 * (out.Measured.TotalWait - out.Oracle.TotalWait) / out.Oracle.TotalWait
		out.CorrectedErrPct = 100 * (out.Corrected.TotalWait - out.Oracle.TotalWait) / out.Oracle.TotalWait
	}
	return out, nil
}

// TimerRanking compares timer technologies on one machine: the residual
// deviation after linear interpolation over the given duration, the
// paper's yardstick for "appropriateness of timer technologies"
// (Section VI). Results are sorted best-first.
type TimerRanking struct {
	Timer        clock.Kind
	MaxDevInterp float64 // after linear interpolation
	MaxDevAlign  float64 // after offset alignment only
	Exceeded     bool    // interp residual crossed the half-latency bound
	FirstExceed  float64
}

// RankTimers runs the deviation study for each timer kind and ranks them
// by post-interpolation residual. The per-timer studies are independent
// simulations (each ClockStudy seeds its own world from the same
// configuration seed, exactly as the serial sweep did), so they fan out on
// a bounded worker pool; workers <= 0 uses all CPUs.
func RankTimers(m topology.Machine, kinds []clock.Kind, duration float64, seed uint64, workers int) ([]TimerRanking, error) {
	if len(kinds) == 0 {
		kinds = []clock.Kind{clock.TSC, clock.TB, clock.RTC, clock.Gettimeofday, clock.MPIWtime, clock.GlobalHW}
	}
	out, err := runner.Map(runner.New(workers), len(kinds), func(i int) (TimerRanking, error) {
		k := kinds[i]
		base := ClockStudyConfig{
			Machine: m, Timer: k, Procs: 4,
			Duration: duration, Interval: duration / 200, Seed: seed,
		}
		base.Correction = CorrectInterp
		interp, err := ClockStudy(base)
		if err != nil {
			return TimerRanking{}, fmt.Errorf("experiments: timer %v: %w", k, err)
		}
		base.Correction = CorrectAlign
		align, err := ClockStudy(base)
		if err != nil {
			return TimerRanking{}, fmt.Errorf("experiments: timer %v: %w", k, err)
		}
		return TimerRanking{
			Timer:        k,
			MaxDevInterp: interp.Series.MaxAbsDeviation(),
			MaxDevAlign:  align.Series.MaxAbsDeviation(),
			Exceeded:     interp.Exceeded,
			FirstExceed:  interp.FirstExceed,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	// in-order collection makes this sort's input, and with it tie-breaks,
	// independent of the worker count
	sort.SliceStable(out, func(i, j int) bool { return out[i].MaxDevInterp < out[j].MaxDevInterp })
	return out, nil
}
