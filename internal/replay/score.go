package replay

import (
	"fmt"

	"tsync/internal/clc"
	"tsync/internal/errest"
	"tsync/internal/fingerprint"
	"tsync/internal/interp"
	"tsync/internal/measure"
	"tsync/internal/runner"
	"tsync/internal/trace"
)

// MethodScore is one row of the correction scoring table: how a replay
// consumer fares when it trusts the timestamps this method produces.
type MethodScore struct {
	Method string
	// Counts are the canonical (timestamp-order) replay's violations.
	Counts Counts
	// Breadth is the mean feasible-interleaving breadth over the probe
	// seeds — how much scheduling freedom the ε window leaves a replay
	// under this correction.
	Breadth float64
	// Checksum is the canonical replay's summary checksum.
	Checksum string
	Err      error
}

// ScoreConfig drives Score.
type ScoreConfig struct {
	Options Options
	// Seeds are the probe seeds for the breadth estimate (default: 3
	// seeds derived from base 1).
	Seeds []uint64
	// Workers bounds the method fan-out; <= 0 uses all CPUs. Rows come
	// back in fixed method order for any worker count.
	Workers int
	// Fingerprint tunes the -autoknots method; zero value uses the
	// fingerprint defaults.
	Fingerprint fingerprint.Options
}

// Score replays the trace under every correction the repository
// produces — none, offset alignment, linear interpolation, the min-max
// error estimate, interpolation + CLC, and the fingerprint auto-knot
// correction — and reports each one's canonical-replay violation counts
// and feasible-interleaving breadth. It is the replay-consumer
// counterpart of experiments.CompareCorrections: methods that leave
// residual clock error keep inverting happened-before edges, and the
// ranking of the violation counts tracks the residual ranking.
//
// Methods are independent (each starts from the raw trace), so they
// fan out on a bounded worker pool; per-method failures land in the
// row's Err, never hiding the other rows.
func Score(raw *trace.Trace, init, fin []measure.Offset, cfg ScoreConfig) ([]MethodScore, error) {
	if raw == nil {
		return nil, fmt.Errorf("replay: nil trace")
	}
	if len(cfg.Seeds) == 0 {
		cfg.Seeds = Seeds(1, 3)
	}
	type method struct {
		name  string
		apply func() (*trace.Trace, error)
	}
	methods := []method{
		{"none", func() (*trace.Trace, error) { return raw, nil }},
		{"align", func() (*trace.Trace, error) {
			corr, err := interp.AlignOnly(init)
			if err != nil {
				return nil, err
			}
			return corr.Apply(raw), nil
		}},
		{"interp", func() (*trace.Trace, error) {
			corr, err := interp.Linear(init, fin)
			if err != nil {
				return nil, err
			}
			return corr.Apply(raw), nil
		}},
		{"errest-minmax", func() (*trace.Trace, error) {
			corr, err := errest.Estimate(raw, errest.MinMax)
			if err != nil {
				return nil, err
			}
			return corr.Apply(raw), nil
		}},
		{"interp+clc", func() (*trace.Trace, error) {
			base := raw
			if linear, err := interp.Linear(init, fin); err == nil {
				base = linear.Apply(raw)
			}
			corrected, _, err := clc.CorrectParallel(base, clc.DefaultOptions())
			return corrected, err
		}},
		{"autoknots", func() (*trace.Trace, error) {
			tr := fingerprint.NewTracker(len(raw.Procs), cfg.Fingerprint)
			for rank, p := range raw.Procs {
				for _, ev := range p.Events {
					tr.Add(rank, ev.True, ev.Time)
				}
			}
			corr, _, err := tr.Report().AutoCorrection()
			if err != nil {
				return nil, err
			}
			return corr.Apply(raw), nil
		}},
	}
	return runner.Map(runner.New(cfg.Workers), len(methods), func(i int) (MethodScore, error) {
		ms := MethodScore{Method: methods[i].name}
		t, err := methods[i].apply()
		if err != nil {
			ms.Err = err
			return ms, nil
		}
		eng, err := New(t, cfg.Options)
		if err != nil {
			ms.Err = err
			return ms, nil
		}
		canon, err := eng.Canonical()
		if err != nil {
			ms.Err = err
			return ms, nil
		}
		ms.Counts = canon.Counts
		ms.Checksum = canon.Checksum
		// serial probe replays: the outer pool already fans out methods
		reps, err := eng.ReplaySeeds(cfg.Seeds, 1)
		if err != nil {
			ms.Err = err
			return ms, nil
		}
		for _, r := range reps {
			ms.Breadth += r.Breadth
		}
		ms.Breadth /= float64(len(reps))
		return ms, nil
	})
}
