# Convenience targets for the tsync repository.

GO ?= go

.PHONY: all build test bench vet figures clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# the full evaluation: one benchmark per table and figure of the paper
bench:
	$(GO) test -bench=. -benchmem ./...

# human-readable regenerations of every paper artifact
figures:
	$(GO) run ./cmd/latencies
	$(GO) run ./cmd/clockstudy -fig 4a
	$(GO) run ./cmd/clockstudy -fig 4b
	$(GO) run ./cmd/clockstudy -fig 4c
	$(GO) run ./cmd/clockstudy -fig 5a
	$(GO) run ./cmd/clockstudy -fig 5b
	$(GO) run ./cmd/clockstudy -fig 5c
	$(GO) run ./cmd/clockstudy -fig 6
	$(GO) run ./cmd/appviolations -compare -waitstates
	$(GO) run ./cmd/ompstudy -timeline

clean:
	rm -f trace.etr trace.etr.offsets.json test_output.txt bench_output.txt
