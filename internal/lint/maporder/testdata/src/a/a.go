// Package a exercises the maporder analyzer: order-dependent writes,
// sinks and returns inside map iteration (positive), order-independent
// shapes (negative), and directive-suppressed reductions.
package a

import (
	"fmt"
	"sort"
	"strings"
)

// lastWriteWins is the errest shape: a conditional selection whose
// tie-breaks follow randomized visit order.
func lastWriteWins(m map[string]int) string {
	best := ""
	bestN := -1
	for k, n := range m {
		if n > bestN {
			bestN = n   // want `assignment to "bestN" inside map iteration`
			best = k    // want `assignment to "best" inside map iteration`
		}
	}
	return best
}

// floatAccumulate: float addition is non-associative, so the sum's bits
// depend on visit order.
func floatAccumulate(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v // want `\+= to "sum" inside map iteration`
	}
	return sum
}

// stringBuild: concatenation order is visit order.
func stringBuild(m map[string]bool) string {
	out := ""
	for k := range m {
		out += k // want `\+= to "out" inside map iteration`
	}
	return out
}

// compaction writes through an outer counter index: entry positions
// follow visit order.
func compaction(m map[string]int, dst []string) {
	j := 0
	for k := range m {
		dst[j] = k // want `assignment to "dst" inside map iteration`
		j++
	}
}

// sinkWriter streams entries into a writer in visit order.
func sinkWriter(m map[string]int, sb *strings.Builder) {
	for k := range m {
		sb.WriteString(k) // want `sb.WriteString inside map iteration`
	}
}

// sinkFprintf formats entries into a writer in visit order.
func sinkFprintf(m map[string]int, sb *strings.Builder) {
	for k, v := range m {
		fmt.Fprintf(sb, "%s=%d\n", k, v) // want `fmt.Fprintf to "sb" inside map iteration`
	}
}

// earlyReturn: which unmatched entry surfaces in the error is
// order-dependent.
func earlyReturn(pending map[string]int) error {
	for k, n := range pending {
		if n > 0 {
			return fmt.Errorf("%d unmatched entries for %s", n, k) // want `return mentions map iteration variable`
		}
	}
	return nil
}

// appendUnsorted collects keys but never sorts them: callers see a
// random permutation.
func appendUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `assignment to "keys" inside map iteration`
	}
	return keys
}

// --- negatives ---

// collectThenSort is the sanctioned fix: the sort right after the loop
// erases the visit order.
func collectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// collectThenSortSlice uses sort.Slice, same idiom.
func collectThenSortSlice(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// keyAddressed writes land each entry in its own cell: the final
// contents are a set, not a sequence.
func keyAddressed(m map[string]int) map[string]int {
	out := map[string]int{}
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}

// intCounter: integer addition is commutative; the count is exact
// whatever the order.
func intCounter(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// localOnly writes loop-private state.
func localOnly(m map[string]int) {
	for _, v := range m {
		x := v * 2
		_ = x
	}
}

// sliceRange is not a map: slices iterate in index order.
func sliceRange(s []float64) float64 {
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	return sum
}

// --- directive-suppressed ---

// pureMin is order-independent by algebra, not by shape: the minimum of
// a set does not depend on the order the set is visited.
func pureMin(m map[string]float64) float64 {
	lo := 1e308
	for _, v := range m {
		if v < lo {
			lo = v //tsync:unordered — pure min reduction: the selected value is the set minimum whatever the visit order
		}
	}
	return lo
}

// wholeLoopDirective suppresses every finding in the loop from the range
// statement's line.
func wholeLoopDirective(m map[string]float64) (float64, float64) {
	lo, hi := 1e308, -1e308
	for _, v := range m { //tsync:unordered — pure min/max reduction over the whole loop
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// fieldBag holds the selector-path variant of the collect idiom.
type fieldBag struct{ offs []int64 }

// selectorCollectThenSort appends through a selector path and sorts
// after the loop: same sanctioned idiom, exempt.
func selectorCollectThenSort(m map[int64]byte) []int64 {
	b := &fieldBag{}
	for off := range m {
		b.offs = append(b.offs, off)
	}
	sort.Slice(b.offs, func(i, j int) bool { return b.offs[i] < b.offs[j] })
	return b.offs
}
