// Package replay is the positive fixture: a hypothetical consumer that
// rewrites local timestamps outside the correction pipeline.
package replay

import "tsync/internal/trace"

// Shift illegally rewrites timestamps in place.
func Shift(evs []trace.Event, d float64) {
	for i := range evs {
		evs[i].Time += d // want `assignment to trace.Event.Time outside the correction pipeline`
	}
}

// Zero illegally clears a timestamp through a pointer.
func Zero(ev *trace.Event) {
	ev.Time = 0 // want `assignment to trace.Event.Time outside the correction pipeline`
}

// Legal ways to interact with events outside the pipeline: reading Time,
// stamping the unregulated oracle time, constructing fresh events, and
// going through the sanctioned setter.
func Legal(ev *trace.Event, t float64) trace.Event {
	_ = ev.Time
	ev.True = t
	ev.SetTime(t)
	return trace.Event{Time: t, Kind: ev.Kind}
}

// Corrupt forges clock-condition violations on purpose: the directive
// suppresses the finding on its line.
func Corrupt(ev *trace.Event, d float64) {
	ev.Time -= d //tsync:tsmutate — fault injector: forging the violation is the point
}
