package stream_test

// Regression tests for the loss-percentage guards: a destroyed header
// leaves a rank with zero retained events and an unknown expected
// count, and the percentage math must refuse to divide rather than
// report NaN, Inf, or a fabricated 0%.

import (
	"bytes"
	"math"
	"testing"

	"tsync/internal/faultinject"
	"tsync/internal/stream"
	"tsync/internal/trace"
	"tsync/internal/xrand"
)

func TestRankLossPct(t *testing.T) {
	cases := []struct {
		name     string
		loss     stream.RankLoss
		retained int64
		wantPct  float64
		wantOK   bool
	}{
		{"no loss", stream.RankLoss{}, 100, 0, true},
		{"half lost", stream.RankLoss{LostEvents: 50}, 50, 50, true},
		{"all lost", stream.RankLoss{LostEvents: 10}, 0, 100, true},
		{"unknown loss", stream.RankLoss{Unknown: true, LostEvents: 3}, 7, 0, false},
		{"destroyed header: nothing retained, nothing counted", stream.RankLoss{Unknown: true}, 0, 0, false},
		{"zero total without unknown flag", stream.RankLoss{}, 0, 0, false},
		{"negative retained from a caller bug", stream.RankLoss{LostEvents: 5}, -5, 0, false},
	}
	for _, tc := range cases {
		pct, ok := tc.loss.LossPct(tc.retained)
		if ok != tc.wantOK || pct != tc.wantPct { //tsync:exact — guard contract: pct is exactly 0 when ok is false
			t.Errorf("%s: LossPct(%d) = (%v, %v), want (%v, %v)", tc.name, tc.retained, pct, ok, tc.wantPct, tc.wantOK)
		}
		if math.IsNaN(pct) || math.IsInf(pct, 0) {
			t.Errorf("%s: LossPct produced %v", tc.name, pct)
		}
	}
}

func TestCorruptionReportLossPct(t *testing.T) {
	r := trace.CorruptionReport{LostEvents: 25}
	if pct, ok := r.LossPct(75); !ok || pct != 25 { //tsync:exact — 25/(25+75) is exactly representable
		t.Errorf("LossPct(75) = (%v, %v), want (25, true)", pct, ok)
	}
	r.UnknownLoss = true
	if pct, ok := r.LossPct(75); ok || pct != 0 { //tsync:exact — guard contract: pct is exactly 0 when ok is false
		t.Errorf("unknown loss: LossPct = (%v, %v), want (0, false)", pct, ok)
	}
	empty := trace.CorruptionReport{}
	if pct, ok := empty.LossPct(0); ok || pct != 0 { //tsync:exact — guard contract: pct is exactly 0 when ok is false
		t.Errorf("empty report: LossPct(0) = (%v, %v), want (0, false)", pct, ok)
	}
}

// TestLossPctDestroyedHeader reproduces the original bug end to end: a
// trace truncated before the tail rank's header yields a placeholder
// rank with zero expected events, and the naive 100·lost/expected would
// have been NaN. The guard must report "unknown", never a number.
func TestLossPctDestroyedHeader(t *testing.T) {
	spec := stream.SynthSpec{
		Ranks: 4, Steps: 50, Seed: xrand.SeedAt(salvageSeed, 40),
		Version: trace.Version2, FrameEvents: 16,
	}
	data := synthBytes(t, spec)
	cut := int64(len(data) * 55 / 100)
	r := &faultinject.TruncatedReaderAt{R: bytes.NewReader(data), N: cut}
	src, err := stream.NewSourceOpts(r, stream.SourceOptions{Salvage: true})
	if err != nil {
		t.Fatalf("NewSourceOpts: %v", err)
	}
	loss := src.Losses()
	if !loss[3].Unknown {
		t.Fatalf("tail rank loss not unknown: %+v", loss[3])
	}
	retained := src.Procs()[3].EventCount
	if retained != 0 {
		t.Fatalf("placeholder rank retained %d events", retained)
	}
	if pct, ok := loss[3].LossPct(int64(retained)); ok || pct != 0 { //tsync:exact — guard contract: pct is exactly 0 when ok is false
		t.Errorf("destroyed header: LossPct = (%v, %v), want (0, false)", pct, ok)
	}
	if rep := src.Report(); rep != nil && rep.UnknownLoss {
		if pct, ok := rep.LossPct(src.Events()); ok || pct != 0 { //tsync:exact — guard contract: pct is exactly 0 when ok is false
			t.Errorf("report with unknown loss: LossPct = (%v, %v), want (0, false)", pct, ok)
		}
	}
}
