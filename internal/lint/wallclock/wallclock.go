// Package wallclock defines an analyzer that bans ambient time and
// randomness from the simulation substrate.
//
// Every experiment in this repository must be a pure function of its
// configuration: the same seed has to produce the same trace on every
// platform, or the paper's figures stop being reproducible and replay
// debugging (à la replay clocks) becomes impossible. Reading the host's
// wall clock or the global math/rand stream injects nondeterminism that no
// test can pin down. Simulated time comes from internal/des and
// internal/clock; randomness flows through internal/xrand, whose
// splitmix64/xoshiro256** streams are stable across Go releases and
// splittable per component.
//
// The analyzer reports any reference to time.Now, time.Since, time.Sleep
// (and friends: After, Tick, NewTimer, NewTicker, AfterFunc, Until) and
// any import of math/rand or math/rand/v2, except in:
//
//   - internal/xrand itself (the sanctioned randomness choke point), and
//   - cmd/ front-ends, which legitimately measure host wall time when
//     benchmarking the real machine.
//
// Suppression: a "tsync:wallclock" comment on the flagged line, naming
// why the host clock is correct there (e.g. a diagnostics-only elapsed
// timer whose value never reaches a simulation result).
package wallclock

import (
	"go/ast"
	"go/types"
	"strconv"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"tsync/internal/lint"
)

const doc = `forbid wall-clock reads and ambient randomness outside internal/xrand and cmd/

Simulations must be deterministic and replayable: time comes from the DES
engine, randomness from internal/xrand. time.Now/Since/Sleep/... and
math/rand imports are flagged everywhere else.`

// Analyzer is the wallclock analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "wallclock",
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// directive is the per-line suppression marker.
const directive = "tsync:wallclock"

// forbiddenTimeFuncs are the package-time identifiers that read or depend
// on the host's wall clock or monotonic clock.
var forbiddenTimeFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
	"Until":     true,
}

func run(pass *analysis.Pass) (any, error) {
	path := pass.Pkg.Path()
	if lint.PathHasSuffix(path, "internal/xrand") || lint.PathHasSegment(path, "cmd") {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	nodeFilter := []ast.Node{(*ast.ImportSpec)(nil), (*ast.SelectorExpr)(nil)}
	ins.Preorder(nodeFilter, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.ImportSpec:
			p, err := strconv.Unquote(n.Path.Value)
			if err != nil {
				return
			}
			if p == "math/rand" || p == "math/rand/v2" {
				if lint.HasLineDirective(pass, n.Pos(), directive) {
					return
				}
				pass.Reportf(n.Pos(), "import of %s outside internal/xrand: draw randomness from a tsync/internal/xrand stream so runs stay deterministic and replayable", p)
			}
		case *ast.SelectorExpr:
			id, ok := n.X.(*ast.Ident)
			if !ok {
				return
			}
			pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok || pn.Imported().Path() != "time" {
				return
			}
			if forbiddenTimeFuncs[n.Sel.Name] {
				if lint.HasLineDirective(pass, n.Pos(), directive) {
					return
				}
				pass.Reportf(n.Pos(), "time.%s outside cmd/: simulated components must take time from the DES engine (internal/des), not the host wall clock", n.Sel.Name)
			}
		}
	})
	return nil, nil
}
