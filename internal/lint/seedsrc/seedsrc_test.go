package seedsrc_test

import (
	"testing"

	"tsync/internal/lint/linttest"
	"tsync/internal/lint/seedsrc"
)

func TestSeedsrc(t *testing.T) {
	linttest.Run(t, seedsrc.Analyzer,
		"a",                    // positive + directive cases
		"tsync/internal/xrand", // negative: the sanctioned choke point
	)
}

// TestHistoricalPrePR2Finding is seedsrc's half of the pre-PR-2 errest
// check (maporder's fixture carries the map-range finding itself): the
// era-appropriate "repair" for the randomized MST tie-break — shuffling
// tied edges with a wall-clock-seeded math/rand generator — is flagged
// on every count, while the real fix (sorted-key scan) passes clean.
func TestHistoricalPrePR2Finding(t *testing.T) {
	linttest.Run(t, seedsrc.Analyzer, "errest_prepr2")
}
