package suite_test

import (
	"strings"
	"testing"

	"tsync/internal/lint/suite"
)

// TestDomainWave asserts both analyzer waves are wired: the PR 1
// substrate guards and the PR 2–5 contract enforcers.
func TestDomainWave(t *testing.T) {
	want := []string{
		// wave 1: simulation substrate
		"wallclock", "floateq", "tsmutate", "locked",
		// wave 2: the PR 2–5 contracts
		"maporder", "seedsrc", "ctxflow", "poolcheck", "errform",
	}
	got := map[string]bool{}
	for _, a := range suite.Domain() {
		got[a.Name] = true
	}
	for _, name := range want {
		if !got[name] {
			t.Errorf("suite.Domain missing analyzer %q", name)
		}
	}
	if len(suite.Domain()) != len(want) {
		t.Errorf("suite.Domain has %d analyzers, want %d", len(suite.Domain()), len(want))
	}
}

// TestStockPassesRideAlong asserts the stock passes that back the
// ctxflow story stay wired: lostcancel (dropped cancel funcs leak the
// goroutines ctxflow exists to stop) and unusedresult (configured with
// the repo's must-consume seed-derivation helpers).
func TestStockPassesRideAlong(t *testing.T) {
	var foundLost, foundUnused bool
	for _, a := range suite.Analyzers() {
		switch a.Name {
		case "lostcancel":
			foundLost = true
		case "unusedresult":
			foundUnused = true
			funcs := a.Flags.Lookup("funcs")
			if funcs == nil {
				t.Fatal("unusedresult has no funcs flag")
			}
			for _, fn := range []string{
				"tsync/internal/xrand.SeedAt",
				"tsync/internal/runner.Seed",
				"tsync/internal/stats.ApproxEqual",
				// and the stock entries must have survived the merge
				"errors.New",
				"context.WithCancel",
			} {
				if !strings.Contains(funcs.Value.String(), fn) {
					t.Errorf("unusedresult funcs missing %q (got %s)", fn, funcs.Value.String())
				}
			}
		}
	}
	if !foundLost {
		t.Error("suite.Analyzers missing lostcancel")
	}
	if !foundUnused {
		t.Error("suite.Analyzers missing unusedresult")
	}
}

// TestNoDuplicateNames guards against two analyzers sharing a name,
// which the unitchecker protocol silently mangles.
func TestNoDuplicateNames(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range suite.Analyzers() {
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}
