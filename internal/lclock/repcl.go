// Replay clocks (RepCl) after Lagwankar & Kulkarni ("Replay Clocks",
// "Tracing Distributed Algorithms Using Replay Clocks"): a hybrid
// logical/physical clock whose timestamps permit re-executing a
// distributed computation in *any* order that is consistent with
// causality within a clock-skew bound ε. Physical time is discretized
// into epochs of RepClConfig.Interval seconds; a RepCl carries the
// maximal epoch it has heard of (Mx), its bounded knowledge of every
// process's epoch as offsets from Mx (Off), and a counter (Ctr) that
// orders events sharing one epoch configuration. Two stamps that are
// Concurrent under the ε-window may be replayed in either order; the
// replay engine in internal/replay draws its feasible interleavings
// from exactly that relation.
package lclock

import (
	"encoding/binary"
	"fmt"
	"math"

	"tsync/internal/trace"
)

// OverflowPolicy selects what a RepCl does when its counter exceeds
// RepClConfig.MaxCounter within one epoch configuration.
type OverflowPolicy uint8

const (
	// OverflowAdvance promotes the overflow into an epoch advance: Mx is
	// incremented as if Interval had elapsed, which keeps timestamps
	// strictly ordered at the cost of letting logical time run ahead of
	// physical time on pathologically hot processes (the paper's
	// recommended policy).
	OverflowAdvance OverflowPolicy = iota
	// OverflowSaturate pins the counter at MaxCounter: timestamps stay
	// within the epoch but same-configuration events stop being strictly
	// ordered, which shrinks the information a replay can rely on.
	OverflowSaturate
	// OverflowError fails the stamping pass; for traces where an
	// overflow indicates a mis-sized Interval rather than a hot spot.
	OverflowError
)

// OffUnknown marks an offset slot whose process is more than ε epochs
// behind Mx (or has never been heard of): the clock retains no usable
// knowledge about it, which is what bounds a RepCl's size.
const OffUnknown = ^uint32(0)

// maxRepClRanks bounds the offset-vector length a decoder will
// allocate, mirroring the event codec's guard against attacker-sized
// preallocations.
const maxRepClRanks = 1 << 20

// RepClConfig parameterizes the replay clock.
type RepClConfig struct {
	// Interval is the epoch length in seconds. The total skew tolerance
	// is Epsilon*Interval: events farther apart than that in local time
	// are ordered, events closer may be concurrent.
	Interval float64
	// Epsilon is the skew bound in epochs.
	Epsilon uint32
	// MaxCounter bounds Ctr within one epoch configuration.
	MaxCounter uint32
	// Overflow selects the counter-overflow policy.
	Overflow OverflowPolicy
}

// Normalize fills zero fields with the defaults: 1 ms epochs, ε = 4
// epochs (4 ms total skew tolerance, comfortably above the µs-scale
// interpolation residuals of the paper's corrected traces and well
// below the ms-scale raw drifts), and a 16-bit counter.
func (c RepClConfig) Normalize() RepClConfig {
	if c.Interval <= 0 {
		c.Interval = 1e-3
	}
	if c.Epsilon == 0 {
		c.Epsilon = 4
	}
	if c.MaxCounter == 0 {
		c.MaxCounter = 1<<16 - 1
	}
	return c
}

// Epoch discretizes a local timestamp. Negative times clamp to epoch 0
// so traces that start slightly before their base do not underflow.
func (c RepClConfig) Epoch(t float64) uint64 {
	if t <= 0 || c.Interval <= 0 {
		return 0
	}
	e := math.Floor(t / c.Interval)
	if e >= math.MaxUint64/2 { // unreachable for sane Interval; guards ÷tiny
		return math.MaxUint64 / 2
	}
	return uint64(e)
}

// RepCl is one replay-clock timestamp: the maximal epoch heard of, the
// per-process epoch knowledge as offsets below Mx (OffUnknown = beyond
// ε), and the within-configuration counter.
type RepCl struct {
	Mx  uint64
	Off []uint32
	Ctr uint32
}

// NewRepCl returns the zero clock for n processes: epoch 0, no
// knowledge of anyone.
func NewRepCl(n int) RepCl {
	off := make([]uint32, n)
	for i := range off {
		off[i] = OffUnknown
	}
	return RepCl{Off: off}
}

// Clone returns an independent copy.
func (r RepCl) Clone() RepCl {
	return RepCl{Mx: r.Mx, Off: append([]uint32(nil), r.Off...), Ctr: r.Ctr}
}

// EpochAt returns the clock's knowledge of process j's epoch; ok is
// false when j is beyond the ε window (or out of range).
func (r RepCl) EpochAt(j int) (uint64, bool) {
	if j < 0 || j >= len(r.Off) || r.Off[j] == OffUnknown {
		return 0, false
	}
	return r.Mx - uint64(r.Off[j]), true
}

// Equal reports componentwise equality.
func (r RepCl) Equal(s RepCl) bool {
	if r.Mx != s.Mx || r.Ctr != s.Ctr || len(r.Off) != len(s.Off) {
		return false
	}
	for i := range r.Off {
		if r.Off[i] != s.Off[i] {
			return false
		}
	}
	return true
}

// advanceTo shifts the clock's frame of reference to epoch mx >= Mx:
// every known offset grows by the difference, falling off the ε window
// once it exceeds Epsilon. Reports whether anything changed.
func (r *RepCl) advanceTo(cfg RepClConfig, mx uint64) bool {
	if mx <= r.Mx {
		return false
	}
	d := mx - r.Mx
	r.Mx = mx
	for i, o := range r.Off {
		if o == OffUnknown {
			continue
		}
		if no := uint64(o) + d; no > uint64(cfg.Epsilon) {
			r.Off[i] = OffUnknown
		} else {
			r.Off[i] = uint32(no)
		}
	}
	return true
}

// setOwn records the owner process's epoch e against the current Mx,
// clamping into the ε window when the local clock lags more than ε
// epochs behind what it has heard of (clamped=true: an ε-skew
// violation the stamper counts). Reports (changed, clamped).
func (r *RepCl) setOwn(cfg RepClConfig, rank int, e uint64) (bool, bool) {
	off, clamped := r.Mx-e, false
	if off > uint64(cfg.Epsilon) {
		off, clamped = uint64(cfg.Epsilon), true
	}
	if r.Off[rank] == uint32(off) {
		return false, clamped
	}
	r.Off[rank] = uint32(off)
	return true, clamped
}

// join merges another clock's knowledge into r (both already advanced
// to the same Mx): componentwise most-recent epoch. Reports whether
// anything changed.
func (r *RepCl) join(s RepCl) bool {
	changed := false
	for i, o := range s.Off {
		if i >= len(r.Off) {
			break
		}
		if o < r.Off[i] { // smaller offset = more recent knowledge
			r.Off[i] = o
			changed = true
		}
	}
	return changed
}

// bumpCtr applies the counter rule after an event: a changed epoch
// configuration resets the counter, an unchanged one increments it,
// and overflow follows the configured policy.
func (r *RepCl) bumpCtr(cfg RepClConfig, rank int, changed bool, floor uint32) error {
	switch {
	case changed:
		r.Ctr = 0
		if floor != 0 {
			r.Ctr = floor + 1
		}
	default:
		r.Ctr++
		if r.Ctr <= floor {
			r.Ctr = floor + 1
		}
	}
	if r.Ctr > cfg.MaxCounter {
		switch cfg.Overflow {
		case OverflowAdvance:
			r.advanceTo(cfg, r.Mx+1)
			r.Off[rank] = 0
			r.Ctr = 0
		case OverflowSaturate:
			r.Ctr = cfg.MaxCounter
		case OverflowError:
			return fmt.Errorf("lclock: RepCl counter overflow at epoch %d (MaxCounter %d); grow Interval or MaxCounter", r.Mx, cfg.MaxCounter)
		}
	}
	return nil
}

// Tick advances the clock for a local event of rank at local time t.
// It returns whether the local clock had to be clamped into the ε
// window (an ε-skew violation under the trace's correction).
func (r *RepCl) Tick(cfg RepClConfig, rank int, t float64) (clamped bool, err error) {
	e := cfg.Epoch(t)
	changed := r.advanceTo(cfg, maxU64(r.Mx, e))
	ownChanged, clamped := r.setOwn(cfg, rank, e)
	changed = changed || ownChanged
	return clamped, r.bumpCtr(cfg, rank, changed, 0)
}

// MergeRecv advances the clock for a receive-like event of rank at
// local time t that observes the sender stamps in remotes: the local
// tick and the element-wise join of every remote's knowledge, with the
// counter floored above every remote's (so a receive never compares
// below its matched send).
func (r *RepCl) MergeRecv(cfg RepClConfig, rank int, t float64, remotes ...RepCl) (clamped bool, err error) {
	e := cfg.Epoch(t)
	mx := maxU64(r.Mx, e)
	var floor uint32
	for _, s := range remotes {
		mx = maxU64(mx, s.Mx)
	}
	changed := r.advanceTo(cfg, mx)
	for _, s := range remotes {
		sc := s.Clone()
		sc.advanceTo(cfg, mx)
		if r.join(sc) {
			changed = true
		}
		if sc.Mx == r.Mx && sc.Ctr > floor {
			floor = sc.Ctr
		}
	}
	ownChanged, clamped := r.setOwn(cfg, rank, e)
	changed = changed || ownChanged
	return clamped, r.bumpCtr(cfg, rank, changed, floor)
}

// Before reports whether a definitely precedes b in every ε-feasible
// replay: either a's epoch is more than ε behind b's (physical time
// orders them), or b's knowledge dominates a's within the window. The
// relation is conservative — when in doubt it reports false, which
// only shrinks the set of reorderings a replay may attempt, never
// admits an unsound one.
func (c RepClConfig) Before(a, b RepCl) bool {
	if a.Mx+uint64(c.Epsilon) < b.Mx {
		return true
	}
	if b.Mx+uint64(c.Epsilon) < a.Mx {
		return false
	}
	dominates, strict := true, false
	for j := range a.Off {
		ae, aok := a.EpochAt(j)
		be, bok := b.EpochAt(j)
		switch {
		case !aok:
			if bok {
				strict = true
			}
		case !bok:
			dominates = false
		case be < ae:
			dominates = false
		case be > ae:
			strict = true
		}
		if !dominates {
			return false
		}
	}
	if strict {
		return true
	}
	return a.Mx == b.Mx && b.Ctr > a.Ctr
}

// Concurrent reports whether neither stamp precedes the other: a
// replay may execute the two events in either order.
func (c RepClConfig) Concurrent(a, b RepCl) bool {
	return !c.Before(a, b) && !c.Before(b, a) && !a.Equal(b)
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// AppendBinary appends the wire encoding: uvarint Mx, uvarint len(Off),
// one uvarint per offset (OffUnknown encodes as its literal 2^32-1),
// uvarint Ctr. The encoding is canonical — minimal uvarints only — so
// encode∘decode is the identity on valid stamps.
func (r RepCl) AppendBinary(dst []byte) []byte {
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		dst = append(dst, tmp[:n]...)
	}
	put(r.Mx)
	put(uint64(len(r.Off)))
	for _, o := range r.Off {
		put(uint64(o))
	}
	put(uint64(r.Ctr))
	return dst
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (r RepCl) MarshalBinary() ([]byte, error) {
	return r.AppendBinary(nil), nil
}

// DecodeRepCl decodes one stamp from the front of data, returning the
// number of bytes consumed. Errors wrap trace.ErrBadFormat with the
// failing field and offset, like every other decode path in the repo.
func DecodeRepCl(data []byte) (RepCl, int, error) {
	var r RepCl
	pos := 0
	get := func(field string) (uint64, error) {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("%w: RepCl %s truncated or overlong at offset %d", trace.ErrBadFormat, field, pos)
		}
		// reject non-minimal encodings (a padded trailing zero byte), so
		// encode∘decode is the identity byte for byte
		if n > 1 && data[pos+n-1] == 0 {
			return 0, fmt.Errorf("%w: RepCl %s non-minimal uvarint at offset %d", trace.ErrBadFormat, field, pos)
		}
		pos += n
		return v, nil
	}
	mx, err := get("Mx")
	if err != nil {
		return r, pos, err
	}
	n, err := get("length")
	if err != nil {
		return r, pos, err
	}
	if n > maxRepClRanks {
		return r, pos, fmt.Errorf("%w: RepCl claims %d offsets (max %d)", trace.ErrBadFormat, n, maxRepClRanks)
	}
	r.Mx = mx
	r.Off = make([]uint32, n)
	for i := range r.Off {
		o, err := get("offset")
		if err != nil {
			return r, pos, err
		}
		if o > math.MaxUint32 {
			return r, pos, fmt.Errorf("%w: RepCl offset %d out of range at offset %d", trace.ErrBadFormat, o, pos)
		}
		r.Off[i] = uint32(o)
	}
	ctr, err := get("Ctr")
	if err != nil {
		return r, pos, err
	}
	if ctr > math.MaxUint32 {
		return r, pos, fmt.Errorf("%w: RepCl counter %d out of range at offset %d", trace.ErrBadFormat, ctr, pos)
	}
	r.Ctr = uint32(ctr)
	return r, pos, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler; trailing bytes
// are a format error.
func (r *RepCl) UnmarshalBinary(data []byte) error {
	dec, n, err := DecodeRepCl(data)
	if err != nil {
		return err
	}
	if n != len(data) {
		return fmt.Errorf("%w: %d trailing bytes after RepCl", trace.ErrBadFormat, len(data)-n)
	}
	*r = dec
	return nil
}

// Validate checks a decoded stamp against a configuration: every known
// offset must sit inside the ε window and the counter under its bound.
// Decoded stamps pass through here before a replay merges them.
func (r RepCl) Validate(cfg RepClConfig) error {
	for i, o := range r.Off {
		if o != OffUnknown && uint64(o) > uint64(cfg.Epsilon) {
			return fmt.Errorf("%w: RepCl offset %d of process %d exceeds epsilon %d", trace.ErrBadFormat, o, i, cfg.Epsilon)
		}
	}
	if r.Ctr > cfg.MaxCounter {
		return fmt.Errorf("%w: RepCl counter %d exceeds MaxCounter %d", trace.ErrBadFormat, r.Ctr, cfg.MaxCounter)
	}
	return nil
}
