// Package b is outside the long-running packages: only the everywhere
// rules (ctx first, never stored) apply; unbounded work without a
// context is this package's own business.
package b

import "context"

// Replay loops forever without a context — legal here.
func Replay(next func() bool) {
	for {
		if !next() {
			return
		}
	}
}

// Late still violates the position rule.
func Late(n int, ctx context.Context) error { // want `context.Context is parameter 2 of Late`
	return ctx.Err()
}

// holder still violates the storage rule.
type holder struct {
	ctx context.Context // want `context.Context stored in a struct field`
}
