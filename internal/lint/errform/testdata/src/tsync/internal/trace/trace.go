// Package trace models the decode path for the errform analyzer:
// classified, contextual errors pass; ad-hoc, unwrapped, or context-free
// ones are reported.
package trace

import (
	"errors"
	"fmt"
)

// ErrBadFormat is the structural-damage sentinel (modelled).
var ErrBadFormat = errors.New("trace: bad file format")

// ErrSalvageBudget is the exhausted-salvage sentinel (modelled).
var ErrSalvageBudget = errors.New("trace: salvage skip budget exceeded")

// ReadHeader is on the decode path: every early return must classify
// and locate.
func ReadHeader(b []byte) (int, error) {
	if len(b) < 8 {
		return 0, errors.New("trace: short header") // want `errors.New on the decode path \(ReadHeader\)`
	}
	if b[0] != 'E' {
		return 0, fmt.Errorf("trace: bad magic %q", b[0]) // want `fmt.Errorf without %w on the decode path \(ReadHeader\)`
	}
	if b[1] > 2 {
		return 0, fmt.Errorf("%w: unsupported version", ErrBadFormat) // want `classified but context-free decode error in ReadHeader`
	}
	if b[2] == 0xFF {
		// the full discipline: classified and located
		return 0, fmt.Errorf("%w: reserved byte %#x at offset %d", ErrBadFormat, b[2], 2)
	}
	return 8, nil
}

// decodeEvent shows the passing shapes.
func decodeEvent(b []byte, off int64) error {
	if len(b) == 0 {
		return fmt.Errorf("%w: empty event at offset %d", ErrBadFormat, off)
	}
	if b[0] == 0 {
		return fmt.Errorf("%w: skipped %d bytes (limit %d)", ErrSalvageBudget, off, 16)
	}
	if err := validate(b); err != nil {
		return fmt.Errorf("event at offset %d: %w", off, err)
	}
	return nil
}

func validate(b []byte) error { return nil }

// Summarize is not on the decode path (name does not match): its errors
// are its own business.
func Summarize(n int) error {
	if n < 0 {
		return errors.New("trace: negative count")
	}
	return fmt.Errorf("trace: cannot summarize %d", n)
}

// ReadBlock hands raw details to a classifying wrapper: constructing the
// inner error as a call argument is the sanctioned helper idiom, exempt.
func ReadBlock(b []byte) error {
	if len(b) == 0 {
		return wrapBad("block", errors.New("empty block"))
	}
	if b[0] != 'B' {
		return wrapBad("block", fmt.Errorf("bad tag %q", b[0]))
	}
	return nil
}

// wrapBad classifies and locates; not itself decode-named, so its own
// constructor is out of scope.
func wrapBad(what string, err error) error {
	return fmt.Errorf("%w: %s: %v", ErrBadFormat, what, err)
}

// NextProc uses the directive for a genuine argument-validation error.
func NextProc(rank int) error {
	if rank < 0 {
		return fmt.Errorf("trace: rank %d out of range", rank) //tsync:rawerr — argument validation, not byte-level damage: no sentinel applies
	}
	return nil
}
