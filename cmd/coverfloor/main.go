// Command coverfloor enforces per-package test-coverage floors: it runs
// `go test -cover` over the given package patterns and fails if any
// package listed in the floors file reports a lower percentage than its
// recorded floor. Coverage may only ratchet up: after raising a package's
// tests, refresh the floors with -write.
//
// Usage:
//
//	go run ./cmd/coverfloor            # check ./internal/... against COVERAGE_FLOORS.txt
//	go run ./cmd/coverfloor -write     # re-record current coverage as the new floors
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// tolerance absorbs run-to-run formatting jitter in go test's rounded
// percentages; real regressions move by whole statements, far more than
// this.
const tolerance = 0.05

var coverRE = regexp.MustCompile(`^ok\s+(\S+)\s+\S+\s+coverage:\s+([0-9.]+)% of statements`)

// measure runs go test -cover over patterns and returns package →
// coverage percent. Packages without test files or statements are
// omitted (they have nothing to ratchet).
func measure(patterns []string) (map[string]float64, error) {
	args := append([]string{"test", "-cover"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go test -cover: %w\n%s", err, out)
	}
	got := map[string]float64{}
	sc := bufio.NewScanner(strings.NewReader(string(out)))
	for sc.Scan() {
		m := coverRE.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		pct, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("parsing %q: %w", sc.Text(), err)
		}
		got[m[1]] = pct
	}
	return got, sc.Err()
}

func readFloors(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	floors := map[string]float64{}
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s:%d: want \"<package> <percent>\", got %q", path, line, text)
		}
		pct, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad percentage %q: %v", path, line, fields[1], err)
		}
		floors[fields[0]] = pct
	}
	return floors, sc.Err()
}

func writeFloors(path string, got map[string]float64) error {
	pkgs := make([]string, 0, len(got))
	for pkg := range got {
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs)
	var b strings.Builder
	b.WriteString("# Per-package test-coverage floors, enforced in CI by cmd/coverfloor.\n")
	b.WriteString("# Coverage only ratchets up: raise a floor by improving the tests and\n")
	b.WriteString("# re-recording with `go run ./cmd/coverfloor -write`.\n")
	for _, pkg := range pkgs {
		fmt.Fprintf(&b, "%s %.1f\n", pkg, got[pkg])
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

func main() {
	floorsPath := flag.String("floors", "COVERAGE_FLOORS.txt", "floors file")
	write := flag.Bool("write", false, "record current coverage as the new floors instead of checking")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./internal/..."}
	}

	got, err := measure(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "coverfloor:", err)
		os.Exit(1)
	}
	if *write {
		if err := writeFloors(*floorsPath, got); err != nil {
			fmt.Fprintln(os.Stderr, "coverfloor:", err)
			os.Exit(1)
		}
		fmt.Printf("coverfloor: recorded %d package floors in %s\n", len(got), *floorsPath)
		return
	}

	floors, err := readFloors(*floorsPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "coverfloor:", err)
		os.Exit(1)
	}
	pkgs := make([]string, 0, len(floors))
	for pkg := range floors {
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs)
	failed := false
	for _, pkg := range pkgs {
		floor := floors[pkg]
		pct, ok := got[pkg]
		if !ok {
			fmt.Printf("FAIL %-46s floor %5.1f%%, package missing from go test -cover output\n", pkg, floor)
			failed = true
			continue
		}
		if pct+tolerance < floor {
			fmt.Printf("FAIL %-46s %5.1f%% < floor %5.1f%%\n", pkg, pct, floor)
			failed = true
			continue
		}
		fmt.Printf("ok   %-46s %5.1f%% >= floor %5.1f%%\n", pkg, pct, floor)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "coverfloor: coverage dropped below a recorded floor")
		os.Exit(1)
	}
}
