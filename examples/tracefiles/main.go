// Tracefiles demonstrates the trace-file workflow as a library: run a
// communicator-based workload, write the trace to disk, read it back,
// window it, profile it, and inspect how clock error corrupts derived
// metrics — everything cmd/tracegen and cmd/tracestat do, programmatically.
//
// Run with: go run ./examples/tracefiles
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"os"

	"tsync"
	"tsync/internal/analysis"
	"tsync/internal/apps"
	"tsync/internal/mpi"
	"tsync/internal/trace"
)

func main() {
	if err := run(os.Stdout, 16, 4, 4, 40); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer, ranks, px, py, steps int) error {
	// a grid transpose workload with row/column communicators, plus an
	// explicit halo ring per step (Sendrecv) so the trace carries
	// point-to-point messages too
	// the default 16 ranks span two SMP nodes, so clocks genuinely disagree
	job := tsync.Job{Machine: "xeon", Timer: "tsc", Ranks: ranks, Seed: 7, Tracing: true}
	cfg := apps.DefaultTranspose(px, py)
	cfg.Steps = steps
	body := apps.Transpose(cfg)
	m, err := job.Run(func(r *mpi.Rank) {
		body(r)
		n := r.Size()
		for i := 0; i < steps; i++ {
			r.Sendrecv((r.Rank()+1)%n, i, 512, nil, (r.Rank()-1+n)%n, i)
			r.Compute(0.25)
		}
	})
	if err != nil {
		return err
	}

	// round-trip through the binary codec (a file in real life)
	var file bytes.Buffer
	if err := tsync.WriteTrace(&file, m.Trace); err != nil {
		return err
	}
	fmt.Fprintf(w, "trace serialized to %d bytes\n", file.Len())
	tr, err := tsync.ReadTrace(&file)
	if err != nil {
		return err
	}
	fmt.Fprint(w, trace.Summarize(tr).String())

	// window the middle half of the run, keeping communication consistent
	s := trace.Summarize(tr)
	var t0 float64
	for _, p := range tr.Procs {
		if len(p.Events) > 0 && (t0 == 0 || p.Events[0].True < t0) {
			t0 = p.Events[0].True
		}
	}
	mid, err := trace.Window(tr, t0+s.SpanTrue/4, t0+3*s.SpanTrue/4)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nmiddle-half window keeps %d of %d events (all messages fully paired)\n",
		mid.EventCount(), tr.EventCount())

	// profile the regions; with raw unaligned clocks some metrics lie
	prof, err := analysis.ProfileRegions(tr, false)
	if err != nil {
		return err
	}
	for _, rp := range prof {
		fmt.Fprintf(w, "region %-14q %4d visits, exclusive %10.1f µs\n",
			rp.Region, rp.Visits, rp.Exclusive*1e6)
	}
	lat, err := analysis.MessageLatencies(tr, false)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\napparent message latencies: mean %.2f µs, min %.2f µs, %d of %d negative — raw clocks lie\n",
		lat.Stats.Mean()*1e6, lat.Stats.Min()*1e6, lat.Negative, lat.Stats.N())

	// repair with the recommended pipeline and recheck
	res, err := tsync.Synchronize(m, "interp", true)
	if err != nil {
		return err
	}
	fixedLat, err := analysis.MessageLatencies(res.Trace, false)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "after interp+CLC:           mean %.2f µs, min %.2f µs, %d negative\n",
		fixedLat.Stats.Mean()*1e6, fixedLat.Stats.Min()*1e6, fixedLat.Negative)
	return nil
}
