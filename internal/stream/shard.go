package stream

// Two-level merge tree. The flat k-way merge pops one heap of k rank
// heads; at cluster-scale rank counts the heap depth and the per-rank
// decode-ahead goroutines both become the bottleneck. The tree splits
// the ranks into contiguous shards, merges each shard on its own
// goroutine (a small heap over synchronous per-rank cursors with slabs
// sized to the rank count), and merges the shard streams at the root.
//
// Determinism: each shard stream is sorted by (True, rank), so at every
// step the root's minimum over the shard heads equals the flat merge's
// minimum over all rank heads (each shard head is the minimum of its
// shard). Shards are contiguous rank ranges, so two shard heads never
// share a rank and the (True, rank) comparison stays a strict total
// order at the root. By induction the root emits exactly the flat
// merge's sequence — DESIGN.md §12 spells the argument out; the
// differential suite enforces it bit for bit across shard counts.

import (
	"io"
	"sync"

	"tsync/internal/trace"
)

// autoShardRanks is the rank count at which Shards=0 (automatic) stops
// selecting the flat merge: below it the flat heap is shallow enough
// that shard hand-off overhead wins nothing.
const autoShardRanks = 128

// shardRankTarget is the rank count the automatic shard count aims at
// per shard; maxAutoShards bounds the goroutine fan-out.
const (
	shardRankTarget = 256
	maxAutoShards   = 64
)

// ShardCount reports the merge fan-out the engine resolves for a
// topology: req shards clamped to the rank count, or the automatic
// selection when req is zero (flat below 128 ranks, then about one
// shard per 256 ranks, capped at 64). CLIs and the bench harness use it
// to report the effective shard count of an automatic run.
func ShardCount(ranks, req int) int { return shardCount(ranks, req) }

// shardCount resolves an Options.Shards setting against a rank count: a
// positive request is honored (clamped so every shard holds at least
// one rank), zero picks the automatic count.
func shardCount(ranks, req int) int {
	if req > 0 {
		if req > ranks {
			return ranks
		}
		return req
	}
	if ranks < autoShardRanks {
		return 1
	}
	s := ranks / shardRankTarget
	if s < 2 {
		s = 2
	}
	if s > maxAutoShards {
		s = maxAutoShards
	}
	return s
}

// shardBounds returns the contiguous rank range of shard i of s over n
// ranks: balanced split, every shard non-empty for s <= n.
func shardBounds(i, s, n int) (lo, hi int) {
	return i * n / s, (i + 1) * n / s
}

// workerSlabCap sizes the per-rank decode slab inside a shard worker.
// Unlike the flat path's decode-ahead stages (two slabs of Batch events
// per rank), every rank of every shard holds one slab for the whole
// walk, so at 10k ranks the cap must shrink with the rank count to keep
// the working set inside the window-bounded memory contract.
func workerSlabCap(batch, totalRanks int) int {
	c := 1 << 16 / totalRanks
	if c > batch {
		c = batch
	}
	if c < 8 {
		c = 8
	}
	return c
}

// syncCursor decodes one rank's events synchronously through a private
// slab, delivering any decode error only after the events that preceded
// it — the same events-then-error order slabCursor gives the flat path.
type syncCursor struct {
	cur *Cursor
	s   slab
	pos int
	err error // carried until the slab's events drain
	fin bool
}

func newSyncCursor(cur *Cursor, slabCap int) *syncCursor {
	return &syncCursor{cur: cur, s: slab{evs: make([]trace.Event, 0, slabCap)}}
}

// nextRef returns a pointer to the rank's next event; the pointee stays
// valid until the slab refills (at most cap further calls).
func (c *syncCursor) nextRef() (*trace.Event, error) {
	if c.pos == len(c.s.evs) {
		if c.err != nil {
			return nil, c.err
		}
		if c.fin {
			return nil, io.EOF
		}
		err := c.cur.fill(&c.s)
		c.pos = 0
		if err == io.EOF {
			c.fin = true
			return nil, io.EOF
		}
		if err != nil {
			c.err = err
			if len(c.s.evs) == 0 {
				return nil, err
			}
		}
	}
	ev := &c.s.evs[c.pos]
	c.pos++
	return ev, nil
}

// mslab is the unit of hand-off from a shard worker to the root: a
// column pair of merged events and their ranks, plus the error (if any)
// that ended the shard stream after the last event.
type mslab struct {
	evs   []trace.Event
	ranks []int32
	err   error
}

type mslabPool struct {
	p sync.Pool
}

// mslabBatchCap bounds the hand-off batch: large enough to amortize the
// channel send, small enough that shards × in-flight batches stay a few
// MiB at the default Batch.
const mslabBatchCap = 1024

func newMslabPool(batch int) *mslabPool {
	if batch > mslabBatchCap {
		batch = mslabBatchCap
	}
	mp := &mslabPool{}
	mp.p.New = func() any {
		return &mslab{evs: make([]trace.Event, 0, batch), ranks: make([]int32, 0, batch)}
	}
	return mp
}

func (mp *mslabPool) get() *mslab { return mp.p.Get().(*mslab) }

func (mp *mslabPool) put(m *mslab) {
	m.evs, m.ranks, m.err = m.evs[:0], m.ranks[:0], nil
	mp.p.Put(m)
}

// shardHeap orders a shard's local rank slots by their head event's
// (True, rank) — the same comparison as the root and the flat
// mergeHeap, restricted to the shard's contiguous range.
type shardHeap struct {
	heads []*trace.Event
	s     []int
}

func (h *shardHeap) less(a, b int) bool {
	ta, tb := h.heads[a].True, h.heads[b].True
	if ta != tb { //tsync:exact — heap order on oracle times; ties break by rank below
		return ta < tb
	}
	return a < b
}

func (h *shardHeap) push(i int) {
	h.s = append(h.s, i)
	for j := len(h.s) - 1; j > 0; {
		p := (j - 1) / 2
		if !h.less(h.s[j], h.s[p]) {
			break
		}
		h.s[j], h.s[p] = h.s[p], h.s[j]
		j = p
	}
}

func (h *shardHeap) pop() int {
	top := h.s[0]
	last := len(h.s) - 1
	h.s[0] = h.s[last]
	h.s = h.s[:last]
	for j := 0; ; {
		c := 2*j + 1
		if c >= last {
			break
		}
		if rgt := c + 1; rgt < last && h.less(h.s[rgt], h.s[c]) {
			c = rgt
		}
		if !h.less(h.s[c], h.s[j]) {
			break
		}
		h.s[j], h.s[c] = h.s[c], h.s[j]
		j = c
	}
	return top
}

// mergeShard is one shard worker: it merges ranks [lo, hi) in (True,
// rank) order and streams the result as mslab batches. A decode error
// ends the stream after the events that preceded it (carried on the
// final mslab); closing stop releases the worker if the root quits
// early. All state arrives as arguments — the goroutine captures
// nothing.
func mergeShard(src *Source, lo, hi, slabCap int, pool *mslabPool, out chan<- *mslab, stop <-chan struct{}) {
	defer close(out)
	n := hi - lo
	curs := make([]*syncCursor, n)
	heads := make([]*trace.Event, n)
	h := shardHeap{heads: heads}
	emit := pool.get()
	send := func(m *mslab) bool {
		select {
		case out <- m:
			return true
		case <-stop:
			pool.put(m)
			return false
		}
	}
	// advance loads slot i's next head; on error it attaches the error
	// to the pending batch and flushes, ending the stream.
	advance := func(i int) (ok, alive bool) {
		ev, err := curs[i].nextRef()
		if err == io.EOF {
			return true, true
		}
		if err != nil {
			emit.err = err
			return false, send(emit)
		}
		heads[i] = ev
		h.push(i)
		return true, true
	}
	for i := 0; i < n; i++ {
		curs[i] = newSyncCursor(src.Cursor(lo+i), slabCap)
		if ok, _ := advance(i); !ok {
			return
		}
	}
	for len(h.s) > 0 {
		i := h.pop()
		emit.evs = append(emit.evs, *heads[i])
		emit.ranks = append(emit.ranks, int32(lo+i))
		if len(emit.evs) == cap(emit.evs) {
			if !send(emit) {
				return
			}
			emit = pool.get()
		}
		if ok, _ := advance(i); !ok {
			return
		}
	}
	if len(emit.evs) > 0 {
		send(emit)
	} else {
		pool.put(emit)
	}
}

// shardStream is the root's view of one worker's output.
type shardStream struct {
	ch  chan *mslab
	cur *mslab
	pos int
}

// treeMerger implements merged over shard workers: prime(0) launches
// the workers and loads every shard's first head; next runs the root
// merge with the same deferred-refill discipline as flatMerger, so a
// shard's mslab is recycled only after its last event was processed.
type treeMerger struct {
	e       *engine
	pool    *mslabPool
	streams []*shardStream
	heads   []*trace.Event // current head event per shard
	headR   []int32        // rank of each shard head
	h       rootHeap
	pending int // shard to refill before the next pop; -1 = none
}

// rootHeap orders shards by their head event's (True, rank). Shards
// cover disjoint contiguous rank ranges, so the comparison is a strict
// total order over the live shard heads.
type rootHeap struct {
	t *treeMerger
	s []int
}

func (h *rootHeap) less(a, b int) bool {
	ta, tb := h.t.heads[a].True, h.t.heads[b].True
	if ta != tb { //tsync:exact — heap order on oracle times; ties break by rank below
		return ta < tb
	}
	return h.t.headR[a] < h.t.headR[b]
}

func (h *rootHeap) push(i int) {
	h.s = append(h.s, i)
	for j := len(h.s) - 1; j > 0; {
		p := (j - 1) / 2
		if !h.less(h.s[j], h.s[p]) {
			break
		}
		h.s[j], h.s[p] = h.s[p], h.s[j]
		j = p
	}
}

func (h *rootHeap) pop() int {
	top := h.s[0]
	last := len(h.s) - 1
	h.s[0] = h.s[last]
	h.s = h.s[:last]
	for j := 0; ; {
		c := 2*j + 1
		if c >= last {
			break
		}
		if rgt := c + 1; rgt < last && h.less(h.s[rgt], h.s[c]) {
			c = rgt
		}
		if !h.less(h.s[c], h.s[j]) {
			break
		}
		h.s[j], h.s[c] = h.s[c], h.s[j]
		j = c
	}
	return top
}

func newTreeMerger(e *engine, src *Source, opt Options, shards int, stop chan struct{}) *treeMerger {
	n := src.Ranks()
	t := &treeMerger{
		e:       e,
		pool:    newMslabPool(opt.Batch),
		streams: make([]*shardStream, shards),
		heads:   make([]*trace.Event, shards),
		headR:   make([]int32, shards),
		pending: -1,
	}
	t.h.t = t
	slabCap := workerSlabCap(opt.Batch, n)
	for i := 0; i < shards; i++ {
		lo, hi := shardBounds(i, shards, n)
		s := &shardStream{ch: make(chan *mslab, 2)}
		t.streams[i] = s
		go mergeShard(src, lo, hi, slabCap, t.pool, s.ch, stop)
	}
	return t
}

// refill loads shard si's next head into the root heap, pulling the
// next mslab when the current one drains. io.EOF (shard exhausted) is
// absorbed; a shard decode error surfaces to the walk.
func (t *treeMerger) refill(si int) error {
	s := t.streams[si]
	for {
		if s.cur != nil && s.pos < len(s.cur.evs) {
			t.heads[si] = &s.cur.evs[s.pos]
			t.headR[si] = s.cur.ranks[s.pos]
			s.pos++
			t.h.push(si)
			return nil
		}
		if s.cur != nil {
			if err := s.cur.err; err != nil {
				s.cur.err = nil
				return err
			}
			t.pool.put(s.cur)
			s.cur = nil
		}
		m, ok := <-s.ch
		if !ok {
			return nil
		}
		s.cur, s.pos = m, 0
	}
}

// prime loads the shard heads on its first call (rank 0); the walk's
// per-rank priming loop needs nothing else — empty ranks are detected
// by the walk's count bookkeeping, and shard startup errors surface
// here, before any event is processed.
func (t *treeMerger) prime(r int) error {
	if r != 0 {
		return nil
	}
	for si := range t.streams {
		if err := t.refill(si); err != nil {
			return err
		}
	}
	return nil
}

func (t *treeMerger) next() (int, *trace.Event, error) {
	if si := t.pending; si >= 0 {
		t.pending = -1
		if err := t.refill(si); err != nil {
			return 0, nil, err
		}
	}
	if len(t.h.s) == 0 {
		return 0, nil, io.EOF
	}
	si := t.h.pop()
	t.pending = si
	return int(t.headR[si]), t.heads[si], nil
}
