package trace

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"tsync/internal/topology"
	"tsync/internal/xrand"
)

// tinyTrace builds a two-rank trace with one message and one collective.
func tinyTrace() *Trace {
	t := &Trace{Machine: "Xeon cluster", Timer: "TSC"}
	t.MinLatency = [4]float64{0, 0.46e-6, 0.84e-6, 4.2e-6}
	reg := t.RegionID("main")
	t.Procs = []Proc{
		{Rank: 0, Core: topology.CoreID{Node: 0}, Clock: "TSC@0:0:0", Events: []Event{
			{Kind: Enter, Time: 0.0, True: 0.0, Region: reg, Partner: -1, Root: -1},
			{Kind: Send, Time: 1.0, True: 1.0, Partner: 1, Tag: 7, Bytes: 64, Region: -1, Root: -1},
			{Kind: CollBegin, Time: 2.0, True: 2.0, Op: OpAllreduce, Comm: 0, Instance: 0, Partner: -1, Region: -1, Root: -1},
			{Kind: CollEnd, Time: 2.5, True: 2.5, Op: OpAllreduce, Comm: 0, Instance: 0, Partner: -1, Region: -1, Root: -1},
			{Kind: Exit, Time: 3.0, True: 3.0, Region: reg, Partner: -1, Root: -1},
		}},
		{Rank: 1, Core: topology.CoreID{Node: 1}, Clock: "TSC@1:0:0", Events: []Event{
			{Kind: Enter, Time: 0.0, True: 0.0, Region: reg, Partner: -1, Root: -1},
			{Kind: Recv, Time: 1.1, True: 1.00001, Partner: 0, Tag: 7, Bytes: 64, Region: -1, Root: -1},
			{Kind: CollBegin, Time: 2.0, True: 2.0, Op: OpAllreduce, Comm: 0, Instance: 0, Partner: -1, Region: -1, Root: -1},
			{Kind: CollEnd, Time: 2.5, True: 2.5, Op: OpAllreduce, Comm: 0, Instance: 0, Partner: -1, Region: -1, Root: -1},
			{Kind: Exit, Time: 3.0, True: 3.0, Region: reg, Partner: -1, Root: -1},
		}},
	}
	return t
}

func TestKindAndOpStrings(t *testing.T) {
	for k := Enter; k <= BarrierExit; k++ {
		if k.String() == "" {
			t.Fatalf("Kind %d has empty name", k)
		}
	}
	if Kind(200).String() == "" || CollOp(200).String() == "" {
		t.Fatalf("out-of-range enums must still print")
	}
	for o := OpNone; o <= OpAlltoall; o++ {
		if o.String() == "" {
			t.Fatalf("CollOp %d has empty name", o)
		}
	}
}

func TestRegionInterning(t *testing.T) {
	tr := &Trace{}
	a := tr.RegionID("compute")
	b := tr.RegionID("io")
	c := tr.RegionID("compute")
	if a != c || a == b {
		t.Fatalf("interning broken: a=%d b=%d c=%d", a, b, c)
	}
	if tr.RegionName(a) != "compute" || tr.RegionName(-1) != "?" || tr.RegionName(99) != "?" {
		t.Fatalf("RegionName lookup broken")
	}
}

func TestValidateAcceptsGoodTrace(t *testing.T) {
	if err := tinyTrace().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesRankGap(t *testing.T) {
	tr := tinyTrace()
	tr.Procs[1].Rank = 5
	if tr.Validate() == nil {
		t.Fatalf("rank gap not detected")
	}
}

func TestValidateCatchesTrueRegression(t *testing.T) {
	tr := tinyTrace()
	tr.Procs[0].Events[2].True = 0.5 // before the Send at true 1.0
	if tr.Validate() == nil {
		t.Fatalf("true-time regression not detected")
	}
}

func TestValidateCatchesBadPartner(t *testing.T) {
	tr := tinyTrace()
	tr.Procs[0].Events[1].Partner = 9
	if tr.Validate() == nil {
		t.Fatalf("partner out of range not detected")
	}
}

func TestValidateAllowsClockConditionViolation(t *testing.T) {
	tr := tinyTrace()
	// receive timestamped before the send: the phenomenon under study,
	// must NOT fail validation
	tr.Procs[1].Events[1].Time = 0.9
	if err := tr.Validate(); err != nil {
		t.Fatalf("clock-condition violation rejected by Validate: %v", err)
	}
}

func TestMessagesMatching(t *testing.T) {
	tr := tinyTrace()
	msgs, err := tr.Messages()
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 {
		t.Fatalf("got %d messages, want 1", len(msgs))
	}
	m := msgs[0]
	if m.From != 0 || m.FromIdx != 1 || m.To != 1 || m.ToIdx != 1 {
		t.Fatalf("bad match: %+v", m)
	}
}

func TestMessagesFIFOOrder(t *testing.T) {
	// two same-channel messages must match in order even if timestamps lie
	tr := &Trace{}
	tr.Procs = []Proc{
		{Rank: 0, Events: []Event{
			{Kind: Send, Time: 1, True: 1, Partner: 1, Tag: 0},
			{Kind: Send, Time: 2, True: 2, Partner: 1, Tag: 0},
		}},
		{Rank: 1, Events: []Event{
			{Kind: Recv, Time: 0.5, True: 1.1, Partner: 0, Tag: 0}, // timestamp lies
			{Kind: Recv, Time: 0.6, True: 2.1, Partner: 0, Tag: 0},
		}},
	}
	msgs, err := tr.Messages()
	if err != nil {
		t.Fatal(err)
	}
	if msgs[0].FromIdx != 0 || msgs[0].ToIdx != 0 || msgs[1].FromIdx != 1 || msgs[1].ToIdx != 1 {
		t.Fatalf("FIFO matching broken: %+v", msgs)
	}
}

func TestMessagesUnmatchedRecv(t *testing.T) {
	tr := &Trace{}
	tr.Procs = []Proc{
		{Rank: 0},
		{Rank: 1, Events: []Event{{Kind: Recv, Partner: 0, Tag: 0}}},
	}
	if _, err := tr.Messages(); err == nil {
		t.Fatalf("orphan Recv not detected")
	}
}

func TestMessagesUnmatchedSend(t *testing.T) {
	tr := &Trace{}
	tr.Procs = []Proc{
		{Rank: 0, Events: []Event{{Kind: Send, Partner: 1, Tag: 0}}},
		{Rank: 1},
	}
	if _, err := tr.Messages(); err == nil {
		t.Fatalf("orphan Send not detected")
	}
}

func TestCollectivesGrouping(t *testing.T) {
	tr := tinyTrace()
	colls, err := tr.Collectives()
	if err != nil {
		t.Fatal(err)
	}
	if len(colls) != 1 {
		t.Fatalf("got %d collectives, want 1", len(colls))
	}
	c := colls[0]
	if c.Op != OpAllreduce || len(c.Begin) != 2 || len(c.End) != 2 {
		t.Fatalf("bad collective: %+v", c)
	}
}

func TestCollectivesMixedOpsRejected(t *testing.T) {
	tr := tinyTrace()
	tr.Procs[1].Events[2].Op = OpBarrier
	if _, err := tr.Collectives(); err == nil {
		t.Fatalf("mixed collective ops not detected")
	}
}

func TestCollectivesMissingEndRejected(t *testing.T) {
	tr := tinyTrace()
	tr.Procs[1].Events = tr.Procs[1].Events[:3] // drop CollEnd and Exit
	if _, err := tr.Collectives(); err == nil {
		t.Fatalf("missing CollEnd not detected")
	}
}

func TestCloneIsDeep(t *testing.T) {
	tr := tinyTrace()
	cp := tr.Clone()
	cp.Procs[0].Events[0].Time = 99
	cp.Regions[0] = "changed"
	if tr.Procs[0].Events[0].Time == 99 || tr.Regions[0] == "changed" { //tsync:exact — aliasing check: 99 was assigned bit-for-bit to the copy
		t.Fatalf("Clone shares storage with original")
	}
	if !reflect.DeepEqual(tr, tinyTrace()) {
		t.Fatalf("original mutated")
	}
}

func TestMinLatencyBetween(t *testing.T) {
	tr := tinyTrace()
	if got := tr.MinLatencyBetween(0, 1); got != 4.2e-6 {
		t.Fatalf("cross-node l_min = %v", got)
	}
	if got := tr.MinLatencyBetween(0, 9); got != 0 {
		t.Fatalf("out-of-range l_min = %v, want 0", got)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	tr := tinyTrace()
	var buf bytes.Buffer
	n, err := Write(&buf, tr)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("Write reported %d bytes, buffer has %d", n, buf.Len())
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatalf("round trip mismatch:\nwrote %+v\nread  %+v", tr, got)
	}
}

func TestCodecRoundTripRandomized(t *testing.T) {
	rng := xrand.NewSource(31)
	kinds := []Kind{Enter, Exit, Send, Recv, CollBegin, CollEnd, Fork, Join, BarrierEnter, BarrierExit}
	check := func(seed uint32) bool {
		s := rng.Sub(string(rune(seed)))
		tr := &Trace{Machine: "m", Timer: "t"}
		tr.RegionID("r0")
		nProcs := 1 + s.Intn(5)
		for p := 0; p < nProcs; p++ {
			proc := Proc{Rank: p, Core: topology.CoreID{Node: p}, Clock: "c"}
			tt := 0.0
			for e := 0; e < s.Intn(20); e++ {
				tt += s.Float64()
				proc.Events = append(proc.Events, Event{
					Kind:     kinds[s.Intn(len(kinds))],
					Time:     tt + s.Normal(0, 1e-5),
					True:     tt,
					Region:   int32(s.Intn(2)) - 1,
					Instance: int32(s.Intn(10)),
					Partner:  int32(s.Intn(nProcs+1)) - 1,
					Tag:      int32(s.Intn(100)),
					Bytes:    int32(s.Intn(1 << 20)),
					Comm:     int32(s.Intn(3)),
					Op:       CollOp(s.Intn(9)),
					Root:     int32(s.Intn(nProcs+1)) - 1,
				})
			}
			tr.Procs = append(tr.Procs, proc)
		}
		var buf bytes.Buffer
		if _, err := Write(&buf, tr); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(tr, got)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a trace"))); err == nil {
		t.Fatalf("garbage accepted")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatalf("empty input accepted")
	}
}

func TestCodecRejectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Write(&buf, tinyTrace()); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{5, len(full) / 2, len(full) - 1} {
		if _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestCodecRejectsWrongVersion(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Write(&buf, tinyTrace()); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4] = 99 // version byte
	if _, err := Read(bytes.NewReader(b)); err == nil {
		t.Fatalf("wrong version accepted")
	}
}

func TestEventCount(t *testing.T) {
	if got := tinyTrace().EventCount(); got != 10 {
		t.Fatalf("EventCount = %d, want 10", got)
	}
}

func BenchmarkCodecWrite(b *testing.B) {
	tr := tinyTrace()
	// widen to a realistic size
	for i := 0; i < 10; i++ {
		tr.Procs[0].Events = append(tr.Procs[0].Events, tr.Procs[0].Events...)
	}
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if _, err := Write(&buf, tr); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

func BenchmarkCodecRead(b *testing.B) {
	tr := tinyTrace()
	for i := 0; i < 10; i++ {
		tr.Procs[0].Events = append(tr.Procs[0].Events, tr.Procs[0].Events...)
	}
	var buf bytes.Buffer
	if _, err := Write(&buf, tr); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Read(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMessageMatching(b *testing.B) {
	tr := &Trace{}
	const n = 1000
	p0 := Proc{Rank: 0}
	p1 := Proc{Rank: 1}
	for i := 0; i < n; i++ {
		p0.Events = append(p0.Events, Event{Kind: Send, Time: float64(i), True: float64(i), Partner: 1})
		p1.Events = append(p1.Events, Event{Kind: Recv, Time: float64(i) + 0.5, True: float64(i) + 0.5, Partner: 0})
	}
	tr.Procs = []Proc{p0, p1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Messages(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSummarize(t *testing.T) {
	tr := tinyTrace()
	s := Summarize(tr)
	if s.Procs != 2 || s.Events != 10 {
		t.Fatalf("summary %+v", s)
	}
	if s.ByKind["Send"] != 1 || s.ByKind["Recv"] != 1 || s.ByKind["Enter"] != 2 {
		t.Fatalf("kind counts %v", s.ByKind)
	}
	if s.Regions["main"] != 2 {
		t.Fatalf("region visits %v", s.Regions)
	}
	if s.Bytes != 64 {
		t.Fatalf("bytes %d", s.Bytes)
	}
	if s.SpanTrue <= 0 || s.SpanTime <= 0 {
		t.Fatalf("spans %v %v", s.SpanTime, s.SpanTrue)
	}
	if s.String() == "" {
		t.Fatalf("empty summary text")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(&Trace{})
	if s.Events != 0 || s.SpanTime != 0 {
		t.Fatalf("empty summary %+v", s)
	}
}

func TestWriteJSON(t *testing.T) {
	tr := tinyTrace()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("JSON output not parseable: %v", err)
	}
	out := buf.String()
	for _, want := range []string{`"machine": "Xeon cluster"`, `"kind": "Send"`, `"region": "main"`, `"op": "allreduce"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("JSON lacks %q", want)
		}
	}
}

func TestWindowKeepsConsistentSubset(t *testing.T) {
	tr := tinyTrace()
	// window covering only the collective (true times 2.0-2.5), not the
	// message at 1.0
	w, err := Window(tr, 1.5, 3.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	msgs, err := w.Messages()
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 0 {
		t.Fatalf("message outside window survived")
	}
	colls, err := w.Collectives()
	if err != nil {
		t.Fatal(err)
	}
	if len(colls) != 1 {
		t.Fatalf("collective inside window dropped")
	}
	// Exit events at true 3.0 are inside; Enter at 0.0 is not
	if got := w.Procs[0].Events[len(w.Procs[0].Events)-1].Kind; got != Exit {
		t.Fatalf("trailing event %v", got)
	}
}

func TestWindowDropsHalfCoveredMessage(t *testing.T) {
	tr := tinyTrace()
	// send at 1.0 inside, recv at 1.00001 outside
	w, err := Window(tr, 0.5, 1.000005)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range w.Procs {
		for _, ev := range p.Events {
			if ev.Kind == Send || ev.Kind == Recv {
				t.Fatalf("half-covered message event survived: %v", ev.Kind)
			}
		}
	}
	if _, err := w.Messages(); err != nil {
		t.Fatalf("windowed trace not matchable: %v", err)
	}
}

func TestWindowRejectsEmptyRange(t *testing.T) {
	if _, err := Window(tinyTrace(), 2, 2); err == nil {
		t.Fatalf("empty window accepted")
	}
}

func TestCodecNeverPanicsOnCorruption(t *testing.T) {
	// failure injection: random single-byte corruptions must produce an
	// error or a (possibly wrong) trace — never a panic or unbounded
	// allocation
	var buf bytes.Buffer
	if _, err := Write(&buf, tinyTrace()); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()
	rng := xrand.NewSource(55)
	for trial := 0; trial < 500; trial++ {
		data := append([]byte(nil), pristine...)
		pos := rng.Intn(len(data))
		data[pos] ^= byte(1 + rng.Intn(255))
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: corruption at byte %d panicked: %v", trial, pos, r)
				}
			}()
			_, _ = Read(bytes.NewReader(data))
		}()
	}
}

func TestCodecNeverPanicsOnTruncation(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Write(&buf, tinyTrace()); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()
	for cut := 0; cut < len(pristine); cut += 7 {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("truncation at %d panicked: %v", cut, r)
				}
			}()
			_, _ = Read(bytes.NewReader(pristine[:cut]))
		}()
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := tinyTrace()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.EventCount() != tr.EventCount() || len(got.Procs) != len(tr.Procs) {
		t.Fatalf("shape lost: %d events, %d procs", got.EventCount(), len(got.Procs))
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	// semantics preserved: same messages and collectives
	m1, err := tr.Messages()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := got.Messages()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m1, m2) {
		t.Fatalf("messages differ after JSON round trip")
	}
	for i, p := range got.Procs {
		for j, ev := range p.Events {
			orig := tr.Procs[i].Events[j]
			if ev.Kind != orig.Kind || ev.Time != orig.Time || ev.True != orig.True || ev.Op != orig.Op { //tsync:exact — codec round trip must be lossless
				t.Fatalf("event %d/%d changed: %+v vs %+v", i, j, ev, orig)
			}
			if tr.RegionName(orig.Region) != got.RegionName(ev.Region) {
				t.Fatalf("region name changed at %d/%d", i, j)
			}
		}
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(bytes.NewReader([]byte("not json"))); err == nil {
		t.Fatalf("garbage accepted")
	}
	bad := `{"procs":[{"rank":5,"core":"0:0:0"}]}`
	if _, err := ReadJSON(bytes.NewReader([]byte(bad))); err == nil {
		t.Fatalf("rank gap accepted")
	}
	badCore := `{"procs":[{"rank":0,"core":"zero"}]}`
	if _, err := ReadJSON(bytes.NewReader([]byte(badCore))); err == nil {
		t.Fatalf("bad core accepted")
	}
	badKind := `{"procs":[{"rank":0,"core":"0:0:0","events":[{"kind":"Teleport"}]}]}`
	if _, err := ReadJSON(bytes.NewReader([]byte(badKind))); err == nil {
		t.Fatalf("bad kind accepted")
	}
	badOp := `{"procs":[{"rank":0,"core":"0:0:0","events":[{"kind":"CollBegin","op":"sorcery"}]}]}`
	if _, err := ReadJSON(bytes.NewReader([]byte(badOp))); err == nil {
		t.Fatalf("bad op accepted")
	}
}
