//go:build race

package stream_test

// raceEnabled lets heavyweight tests (the 1M-event salvage ratio) skip
// under the race detector, whose ~20x slowdown would dominate the CI
// race sweep; the small deterministic salvage tests still race.
const raceEnabled = true
