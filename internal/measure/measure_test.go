package measure

import (
	"math"
	"testing"

	"tsync/internal/clock"
	"tsync/internal/mpi"
	"tsync/internal/topology"
)

func newWorld(t testing.TB, n int, timer clock.Kind) *mpi.World {
	t.Helper()
	m := topology.Xeon()
	pin, err := topology.InterNode(m, n)
	if err != nil {
		t.Fatal(err)
	}
	w, err := mpi.NewWorld(mpi.Config{Machine: m, Timer: timer, Pinning: pin, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestOffsetsAccuracy(t *testing.T) {
	// Cristian with minimum-RTT filtering must recover the true offsets
	// to within a few microseconds (latency asymmetry bound)
	w := newWorld(t, 4, clock.TSC)
	var table []Offset
	var trueOffsets [4]float64
	err := w.Run(func(r *mpi.Rank) {
		var err error
		table, err = Offsets(r, 20)
		if err != nil {
			t.Error(err)
		}
		// oracle: each clock's value at the common true instant 0; drift
		// over the few simulated milliseconds of measurement is ppm-scale
		// and negligible here
		trueOffsets[r.Rank()] = r.Clock().Ideal(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(table) != 4 {
		t.Fatalf("offset table has %d entries", len(table))
	}
	for i := 1; i < 4; i++ {
		trueOff := trueOffsets[0] - trueOffsets[i]
		if got := table[i].Offset; math.Abs(got-trueOff) > 5e-6 {
			t.Fatalf("rank %d: measured offset %v, true %v (err %v)", i, got, trueOff, math.Abs(got-trueOff))
		}
	}
}

func TestOffsetsAllRanksGetTable(t *testing.T) {
	w := newWorld(t, 3, clock.TSC)
	tables := make([][]Offset, 3)
	err := w.Run(func(r *mpi.Rank) {
		tab, err := Offsets(r, 5)
		if err != nil {
			t.Error(err)
		}
		tables[r.Rank()] = tab
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 3; i++ {
		if len(tables[i]) != 3 {
			t.Fatalf("rank %d table size %d", i, len(tables[i]))
		}
		for j := range tables[i] {
			if tables[i][j] != tables[0][j] {
				t.Fatalf("rank %d table differs from master's at %d", i, j)
			}
		}
	}
}

func TestOffsetsLeaveNoTraceEvents(t *testing.T) {
	m := topology.Xeon()
	pin, _ := topology.InterNode(m, 2)
	w, err := mpi.NewWorld(mpi.Config{Machine: m, Timer: clock.TSC, Pinning: pin, Seed: 1, Tracing: true})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(r *mpi.Rank) {
		if _, err := Offsets(r, 5); err != nil {
			t.Error(err)
		}
		if !r.Tracing() {
			t.Errorf("rank %d: tracing state not restored", r.Rank())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := w.Trace().EventCount(); n != 0 {
		t.Fatalf("offset measurement recorded %d trace events", n)
	}
}

func TestOffsetsRejectsBadReps(t *testing.T) {
	w := newWorld(t, 2, clock.TSC)
	err := w.Run(func(r *mpi.Rank) {
		if _, err := Offsets(r, 0); err == nil {
			t.Error("reps=0 accepted")
		}
	})
	// both ranks return early with an error and never communicate — OK
	if err != nil {
		t.Fatal(err)
	}
}

func TestOffsetsSingleRank(t *testing.T) {
	w := newWorld(t, 1, clock.TSC)
	err := w.Run(func(r *mpi.Rank) {
		tab, err := Offsets(r, 3)
		if err != nil {
			t.Error(err)
		}
		if len(tab) != 1 || tab[0].Offset != 0 {
			t.Errorf("single-rank table %+v", tab)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPingPongMatchesTableII(t *testing.T) {
	w := newWorld(t, 2, clock.TSC)
	var res LatencyResult
	err := w.Run(func(r *mpi.Rank) {
		got, err := PingPong(r, 500, 0)
		if err != nil {
			t.Error(err)
		}
		if r.Rank() == 0 {
			res = got
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 500 {
		t.Fatalf("N = %d", res.N)
	}
	// inter-node one-way: ~4.3 µs mean plus measurement overheads
	if res.Mean < 4.0e-6 || res.Mean > 8e-6 {
		t.Fatalf("inter-node one-way latency %v s, want ~4.3-5 µs", res.Mean)
	}
	if res.StdDev <= 0 || res.StdDev > res.Mean {
		t.Fatalf("latency stddev %v implausible", res.StdDev)
	}
	if res.Min > res.Mean || res.Max < res.Mean {
		t.Fatalf("min/mean/max inconsistent: %v/%v/%v", res.Min, res.Mean, res.Max)
	}
}

func TestCollectiveLatency(t *testing.T) {
	w := newWorld(t, 4, clock.TSC)
	var res LatencyResult
	err := w.Run(func(r *mpi.Rank) {
		got, err := Collective(r, 100, 8)
		if err != nil {
			t.Error(err)
		}
		if r.Rank() == 0 {
			res = got
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 100 {
		t.Fatalf("N = %d", res.N)
	}
	// Table II: 4-node allreduce ~12.86 µs; accept the 8-25 µs class
	if res.Mean < 8e-6 || res.Mean > 25e-6 {
		t.Fatalf("4-node allreduce %v s, want ~13 µs class", res.Mean)
	}
}

func TestPingPongNeedsTwoRanks(t *testing.T) {
	w := newWorld(t, 1, clock.TSC)
	err := w.Run(func(r *mpi.Rank) {
		if _, err := PingPong(r, 10, 0); err == nil {
			t.Error("single-rank PingPong accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOffsetsWithNTPClock(t *testing.T) {
	// gettimeofday offsets are milliseconds; Cristian must still recover
	// them to microsecond accuracy
	w := newWorld(t, 2, clock.Gettimeofday)
	var table []Offset
	var ideal [2]float64
	err := w.Run(func(r *mpi.Rank) {
		var err error
		table, err = Offsets(r, 20)
		if err != nil {
			t.Error(err)
		}
		ideal[r.Rank()] = r.Clock().Ideal(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	trueOff := ideal[0] - ideal[1]
	if math.Abs(table[1].Offset-trueOff) > 10e-6 {
		t.Fatalf("NTP-clock offset error %v s", math.Abs(table[1].Offset-trueOff))
	}
}

func BenchmarkOffsets8Ranks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := newWorld(b, 8, clock.TSC)
		err := w.Run(func(r *mpi.Rank) {
			if _, err := Offsets(r, 10); err != nil {
				b.Error(err)
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func TestOffsetsTreeAccuracy(t *testing.T) {
	// the indirect tree measurement must recover true offsets to within
	// a few hop errors (error accumulates along the O(log n) path)
	w := newWorld(t, 8, clock.TSC)
	var table []Offset
	var ideal [8]float64
	err := w.Run(func(r *mpi.Rank) {
		var err error
		table, err = OffsetsTree(r, 20)
		if err != nil {
			t.Error(err)
		}
		ideal[r.Rank()] = r.Clock().Ideal(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(table) != 8 {
		t.Fatalf("table size %d", len(table))
	}
	for i := 1; i < 8; i++ {
		trueOff := ideal[0] - ideal[i]
		if got := table[i].Offset; math.Abs(got-trueOff) > 12e-6 {
			t.Fatalf("rank %d: tree offset %v, true %v (err %v)", i, got, trueOff, math.Abs(got-trueOff))
		}
	}
}

func TestOffsetsTreeAllRanksAgree(t *testing.T) {
	w := newWorld(t, 6, clock.TSC)
	tables := make([][]Offset, 6)
	err := w.Run(func(r *mpi.Rank) {
		tab, err := OffsetsTree(r, 5)
		if err != nil {
			t.Error(err)
		}
		tables[r.Rank()] = tab
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 6; i++ {
		for j := range tables[i] {
			if tables[i][j] != tables[0][j] {
				t.Fatalf("rank %d disagrees with root at entry %d", i, j)
			}
		}
	}
}

func TestOffsetsTreeUsableForInterpolation(t *testing.T) {
	// a full round trip: tree offsets at init and finalize feed Eq. 3
	w := newWorld(t, 8, clock.TSC)
	var init, fin []Offset
	err := w.Run(func(r *mpi.Rank) {
		i1, err := OffsetsTree(r, 10)
		if err != nil {
			t.Error(err)
			return
		}
		r.Compute(100)
		f1, err := OffsetsTree(r, 10)
		if err != nil {
			t.Error(err)
			return
		}
		if r.Rank() == 0 {
			init, fin = i1, f1
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range init {
		if fin[i].WorkerTime <= init[i].WorkerTime {
			t.Fatalf("rank %d: finalize measurement not after init", i)
		}
	}
}

func TestOffsetsTreeRejectsBadReps(t *testing.T) {
	w := newWorld(t, 2, clock.TSC)
	err := w.Run(func(r *mpi.Rank) {
		if _, err := OffsetsTree(r, 0); err == nil {
			t.Error("reps=0 accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLatencyMatrix(t *testing.T) {
	m := topology.Opteron()
	pin, err := topology.InterNode(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	w, err := mpi.NewWorld(mpi.Config{Machine: m, Timer: clock.Gettimeofday, Pinning: pin, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	mats := make([][][]float64, 4)
	err = w.Run(func(r *mpi.Rank) {
		mat, err := LatencyMatrix(r, 20, 0)
		if err != nil {
			t.Error(err)
			return
		}
		mats[r.Rank()] = mat
	})
	if err != nil {
		t.Fatal(err)
	}
	mat := mats[0]
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i == j {
				if mat[i][j] != 0 {
					t.Fatalf("diagonal (%d,%d) = %v", i, j, mat[i][j])
				}
				continue
			}
			if mat[i][j] < 3e-6 || mat[i][j] > 20e-6 {
				t.Fatalf("latency (%d,%d) = %v out of band", i, j, mat[i][j])
			}
		}
	}
	// torus: node 0 -> node 2 is two hops in x, must exceed the
	// one-hop 0 -> 1 on average (per-route asymmetry can perturb, so
	// compare against the hop cost scale, not strictly)
	if mat[0][2] < mat[0][1]-2e-6 {
		t.Fatalf("no torus gradient: 2-hop %v vs 1-hop %v", mat[0][2], mat[0][1])
	}
	// all ranks received the same matrix
	for r := 1; r < 4; r++ {
		for i := range mat {
			for j := range mat[i] {
				if mats[r][i][j] != mat[i][j] {
					t.Fatalf("rank %d matrix differs at (%d,%d)", r, i, j)
				}
			}
		}
	}
}
