package trace

// Fuzzing for the binary codec. The interesting properties:
//
//   - Read never panics or allocates unbounded memory on corrupt input —
//     the regression behind FuzzRead's overlong-count seed was
//     `make([]Event, nEvents)` trusting an attacker-controlled varint and
//     pre-allocating up to ~48 GiB before a single event byte was read;
//   - any trace Read accepts round-trips: re-encoding is stable byte for
//     byte (encodings are canonical), so Read ∘ Write is the identity.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
)

// overlongCountFile builds a structurally valid header whose one process
// claims 2^29 events but carries no event bytes at all.
func overlongCountFile() []byte {
	var buf bytes.Buffer
	buf.WriteString(codecMagic)
	buf.WriteByte(codecVersion)
	var varint [binary.MaxVarintLen64]byte
	uv := func(v uint64) {
		n := binary.PutUvarint(varint[:], v)
		buf.Write(varint[:n])
	}
	uv(0)                        // machine: empty string
	uv(0)                        // timer: empty string
	buf.Write(make([]byte, 4*8)) // MinLatency
	uv(0)                        // no regions
	uv(1)                        // one process
	uv(0)                        // rank
	uv(0)                        // core: node
	uv(0)                        // core: chip
	uv(0)                        // core: core
	uv(0)                        // clock: empty string
	uv(1 << 29)                  // claims 512 Mi events (~24 GiB)...
	return buf.Bytes()           // ...and ends here
}

func TestReadOverlongEventCountFailsFast(t *testing.T) {
	_, err := Read(bytes.NewReader(overlongCountFile()))
	if !errors.Is(err, ErrBadFormat) {
		t.Fatalf("err = %v, want ErrBadFormat", err)
	}
}

func TestReadTruncatedEventsIsBadFormat(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Write(&buf, tinyTrace()); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	// every strict prefix must fail — and fail as a format error, not as
	// a bare io.EOF that callers could mistake for a clean end of stream
	for cut := 0; cut < len(whole); cut += 7 {
		_, err := Read(bytes.NewReader(whole[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d/%d bytes accepted", cut, len(whole))
		}
		if !errors.Is(err, ErrBadFormat) && !errors.Is(err, io.ErrUnexpectedEOF) && err != io.EOF {
			t.Fatalf("truncation at %d: unexpected error type %v", cut, err)
		}
	}
}

func FuzzRead(f *testing.F) {
	var buf bytes.Buffer
	if _, err := Write(&buf, tinyTrace()); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])                                                       // truncated mid-events
	f.Add([]byte{})                                                                   // empty file
	f.Add([]byte("NOPE"))                                                             // corrupt magic
	f.Add([]byte("ETRC\x07"))                                                         // unsupported version
	f.Add(append([]byte(nil), "ETRC\x01\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"...)) // absurd machine-string length
	f.Add(overlongCountFile())                                                        // the 48 GiB pre-allocation repro
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejecting corrupt input is fine; panicking or OOMing is not
		}
		// accepted input must round-trip through a stable canonical encoding
		var b1 bytes.Buffer
		if _, err := Write(&b1, tr); err != nil {
			t.Fatalf("re-encode of accepted trace failed: %v", err)
		}
		tr2, err := Read(bytes.NewReader(b1.Bytes()))
		if err != nil {
			t.Fatalf("re-read of canonical encoding failed: %v", err)
		}
		var b2 bytes.Buffer
		if _, err := Write(&b2, tr2); err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatalf("round trip is not stable: %d vs %d bytes", b1.Len(), b2.Len())
		}
	})
}

func TestFuzzSeedsRejectedCleanly(t *testing.T) {
	// the non-valid seeds of FuzzRead's corpus must all fail with
	// ErrBadFormat (or a truncation error), never succeed
	for _, data := range [][]byte{
		{},
		[]byte("NOPE"),
		[]byte("ETRC\x07"),
		[]byte("ETRC\x01\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"),
		overlongCountFile(),
	} {
		if _, err := Read(bytes.NewReader(data)); err == nil {
			t.Fatalf("corrupt input %q accepted", strings.ToValidUTF8(string(data), "?"))
		}
	}
}
