package stream_test

// Differential property tests pinning the streaming pipeline to the
// in-memory one: for randomized synthetic traces, every window size and
// worker count must yield bit-identical output event bytes, experiment
// checksums, censuses, CLC reports, and distortion figures.

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"tsync/internal/analysis"
	"tsync/internal/clc"
	"tsync/internal/core"
	"tsync/internal/experiments"
	"tsync/internal/lclock"
	"tsync/internal/measure"
	"tsync/internal/stream"
	"tsync/internal/trace"
	"tsync/internal/xrand"
)

const diffSeed = 0xd1ff5eed

var diffWindows = []int{1, 16, 4096}
var diffWorkers = []int{1, 4}

// diffBatches exercises the slab pipeline at both extremes: one-event
// slabs (maximal stage hand-offs) and the default production size.
var diffBatches = []int{1, 4096}

// diffShards runs every differential case through both merge shapes:
// the flat single-heap merge and a two-level tree. Output must be
// bit-identical — Shards is a wall-time knob, never a semantic one.
var diffShards = []int{1, 4}

// synthFile writes a synthetic trace to a temp file and returns its path
// with the exact offset tables.
func synthFile(t *testing.T, spec stream.SynthSpec) (string, []measure.Offset, []measure.Offset) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "synth.etr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	init, fin, err := stream.Synth(spec, f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatalf("Synth: %v", err)
	}
	return path, init, fin
}

func openSource(t *testing.T, path string) *stream.Source {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	src, err := stream.NewSource(f)
	if err != nil {
		t.Fatalf("NewSource: %v", err)
	}
	return src
}

func readTrace(t *testing.T, path string) *trace.Trace {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	return tr
}

func diffSpecs() []stream.SynthSpec {
	return []stream.SynthSpec{
		{Ranks: 2, Steps: 30, CollEvery: 0, Seed: xrand.SeedAt(diffSeed, 0)},
		{Ranks: 3, Steps: 25, CollEvery: 3, Seed: xrand.SeedAt(diffSeed, 1)},
		{Ranks: 5, Steps: 20, CollEvery: 4, Seed: xrand.SeedAt(diffSeed, 2)},
		// Columnar v2 input: the source decodes through blockColFrame,
		// proving the delta encoding lossless under every pipeline shape.
		{Ranks: 4, Steps: 18, CollEvery: 3, Seed: xrand.SeedAt(diffSeed, 8),
			Version: trace.Version2, FrameEvents: 16, Columnar: true},
	}
}

func TestDifferentialPipeline(t *testing.T) {
	narrow := clc.DefaultOptions()
	narrow.BackwardWindow = 2e-3
	noBackward := clc.DefaultOptions()
	noBackward.BackwardWindow = 0
	pipes := []struct {
		name string
		base core.Base
		clc  bool
		opts clc.Options
	}{
		{"none", core.BaseNone, false, clc.Options{}},
		{"interp-clc", core.BaseInterp, true, clc.Options{}},
		{"align-clc-narrow", core.BaseAlign, true, narrow},
		{"interp-clc-noback", core.BaseInterp, true, noBackward},
	}
	for si, spec := range diffSpecs() {
		path, init, fin := synthFile(t, spec)
		raw := readTrace(t, path)
		src := openSource(t, path)
		for _, pipe := range pipes {
			mem, err := core.Pipeline{Base: pipe.base, CLC: pipe.clc, CLCOptions: pipe.opts}.Run(raw, init, fin)
			if err != nil {
				t.Fatalf("spec %d %s: in-memory: %v", si, pipe.name, err)
			}
			var memBuf bytes.Buffer
			if _, err := trace.Write(&memBuf, mem.Trace); err != nil {
				t.Fatal(err)
			}
			memSum, err := experiments.ChecksumTrace(mem.Trace)
			if err != nil {
				t.Fatal(err)
			}
			for _, window := range diffWindows {
				for _, workers := range diffWorkers {
					for _, batch := range diffBatches {
						for _, shards := range diffShards {
							name := fmt.Sprintf("spec%d/%s/w%d/k%d/b%d/s%d", si, pipe.name, window, workers, batch, shards)
							t.Run(name, func(t *testing.T) {
								var out bytes.Buffer
								p := stream.Pipeline{
									Base: pipe.base, CLC: pipe.clc, CLCOptions: pipe.opts,
									Options: stream.Options{Window: window, Workers: workers, Batch: batch, Shards: shards},
								}
								res, err := p.Run(src, &out, init, fin)
								if err != nil {
									t.Fatalf("streaming: %v", err)
								}
								if !bytes.Equal(out.Bytes(), memBuf.Bytes()) {
									t.Fatalf("output bytes differ: %d vs %d bytes", out.Len(), memBuf.Len())
								}
								gotSum, err := experiments.ChecksumTraceFile(bytes.NewReader(out.Bytes()))
								if err != nil {
									t.Fatal(err)
								}
								if gotSum != memSum {
									t.Fatalf("trace checksum %s != in-memory %s", gotSum, memSum)
								}
								if !reflect.DeepEqual(res.Before, mem.Before) {
									t.Errorf("Before census differs:\n stream %+v\n memory %+v", res.Before, mem.Before)
								}
								if !reflect.DeepEqual(res.After, mem.After) {
									t.Errorf("After census differs:\n stream %+v\n memory %+v", res.After, mem.After)
								}
								if res.CLCReport != mem.CLCReport {
									t.Errorf("CLC report differs:\n stream %+v\n memory %+v", res.CLCReport, mem.CLCReport)
								}
								if res.Distortion != mem.Distortion {
									t.Errorf("distortion differs:\n stream %+v\n memory %+v", res.Distortion, mem.Distortion)
								}
								if res.Stats.Events != src.Events() {
									t.Errorf("stats counted %d events, source has %d", res.Stats.Events, src.Events())
								}
							})
						}
					}
				}
			}
		}
	}
}

// TestDifferentialIdentity: with no correction at all, the streamed
// output must reproduce the input file byte for byte.
func TestDifferentialIdentity(t *testing.T) {
	path, _, _ := synthFile(t, stream.SynthSpec{Ranks: 3, Steps: 10, CollEvery: 2, Seed: xrand.SeedAt(diffSeed, 7)})
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	src := openSource(t, path)
	var out bytes.Buffer
	if _, err := (stream.Pipeline{Base: core.BaseNone}).Run(src, &out, nil, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatalf("identity pipeline rewrote bytes: %d vs %d", out.Len(), len(want))
	}
}

func TestDifferentialCensus(t *testing.T) {
	path, _, _ := synthFile(t, stream.SynthSpec{Ranks: 4, Steps: 15, CollEvery: 3, Seed: xrand.SeedAt(diffSeed, 3)})
	raw := readTrace(t, path)
	want, err := analysis.CensusOf(raw)
	if err != nil {
		t.Fatal(err)
	}
	src := openSource(t, path)
	got, stats, err := stream.Census(src, stream.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("census differs:\n stream %+v\n memory %+v", got, want)
	}
	if stats.Events != src.Events() {
		t.Errorf("stats counted %d events, source has %d", stats.Events, src.Events())
	}
}

func TestDifferentialLamport(t *testing.T) {
	path, _, _ := synthFile(t, stream.SynthSpec{Ranks: 3, Steps: 12, CollEvery: 4, Seed: xrand.SeedAt(diffSeed, 4)})
	raw := readTrace(t, path)
	const delta = 1e-6
	want, err := lclock.LamportSchedule(raw, delta)
	if err != nil {
		t.Fatal(err)
	}
	var wantBuf bytes.Buffer
	if _, err := trace.Write(&wantBuf, want); err != nil {
		t.Fatal(err)
	}
	src := openSource(t, path)
	for _, workers := range diffWorkers {
		var out bytes.Buffer
		if _, err := stream.LamportSchedule(src, delta, &out, stream.Options{Workers: workers}); err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		if !bytes.Equal(out.Bytes(), wantBuf.Bytes()) {
			t.Fatalf("workers %d: Lamport schedule bytes differ", workers)
		}
	}
}

func TestWindowPolicyError(t *testing.T) {
	// a collective holds two pending items per rank, so window 1 under
	// PolicyError must fail fast
	path, _, _ := synthFile(t, stream.SynthSpec{Ranks: 3, Steps: 6, CollEvery: 1, Seed: xrand.SeedAt(diffSeed, 5)})
	src := openSource(t, path)
	_, err := (stream.Pipeline{
		Base:    core.BaseNone,
		Options: stream.Options{Window: 1, Policy: stream.PolicyError},
	}).Run(src, nil, nil, nil)
	if !errors.Is(err, stream.ErrWindowExceeded) {
		t.Fatalf("want ErrWindowExceeded, got %v", err)
	}
	// the same run under PolicySpill completes and records the overflow
	var out bytes.Buffer
	res, err := (stream.Pipeline{
		Base:    core.BaseNone,
		Options: stream.Options{Window: 1, Policy: stream.PolicySpill},
	}).Run(src, &out, nil, nil)
	if err != nil {
		t.Fatalf("PolicySpill: %v", err)
	}
	if res.Stats.SpilledEvents == 0 {
		t.Error("PolicySpill recorded no spilled events despite window 1")
	}
	if res.Stats.MaxPending <= 1 {
		t.Errorf("MaxPending = %d, want > window", res.Stats.MaxPending)
	}
}

func TestStreamingUnsupported(t *testing.T) {
	path, init, fin := synthFile(t, stream.SynthSpec{Ranks: 2, Steps: 4, Seed: xrand.SeedAt(diffSeed, 6)})
	src := openSource(t, path)
	cases := []stream.Pipeline{
		{Base: core.BaseRegression},
		{Base: core.BaseConvexHull},
		{Base: core.BaseMinMax},
		{Base: core.BaseNone, CLC: true, CLCOptions: func() clc.Options {
			o := clc.DefaultOptions()
			o.SharedMemory = true
			return o
		}()},
		{Base: core.BaseNone, CLC: true, CLCOptions: func() clc.Options {
			o := clc.DefaultOptions()
			o.Domains = [][]int{{0, 1}}
			return o
		}()},
	}
	for i, p := range cases {
		if _, err := p.Run(src, nil, init, fin); !errors.Is(err, stream.ErrUnsupported) {
			t.Errorf("case %d: want ErrUnsupported, got %v", i, err)
		}
	}
}

// TestDifferentialShardTree pins the two-level merge tree to the flat
// merge on a rank count large enough for real multi-rank shards: every
// shard count (including degenerate one-rank shards and more shards
// than make sense) must reproduce the flat merge's output bytes and
// checksum exactly, across window and batch extremes.
func TestDifferentialShardTree(t *testing.T) {
	spec := stream.SynthSpec{Ranks: 9, Steps: 40, CollEvery: 5, Seed: xrand.SeedAt(diffSeed, 9)}
	path, init, fin := synthFile(t, spec)
	src := openSource(t, path)

	run := func(opt stream.Options) []byte {
		t.Helper()
		var out bytes.Buffer
		p := stream.Pipeline{Base: core.BaseInterp, CLC: true, Options: opt}
		if _, err := p.Run(src, &out, init, fin); err != nil {
			t.Fatalf("%+v: %v", opt, err)
		}
		return out.Bytes()
	}

	flat := run(stream.Options{Shards: 1})
	for _, shards := range []int{2, 3, 4, 9, 64} {
		for _, window := range diffWindows {
			for _, batch := range diffBatches {
				name := fmt.Sprintf("s%d/w%d/b%d", shards, window, batch)
				t.Run(name, func(t *testing.T) {
					got := run(stream.Options{Shards: shards, Window: window, Batch: batch})
					if !bytes.Equal(got, flat) {
						t.Fatalf("tree merge with %d shards diverges from the flat merge", shards)
					}
				})
			}
		}
	}
}
