package trace

// Incremental codec access. Read and Write materialize whole traces; the
// types here expose the same .etr encoding one process and one event at a
// time, so million-event traces can flow through analyses in O(1) memory
// per rank (internal/stream). Read and Write are thin wrappers over
// EventReader and EventWriter — both paths share a single encoder and
// decoder, which is what makes the streaming pipeline's output
// bit-identical to the in-memory one by construction rather than by
// testing alone.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"tsync/internal/topology"
)

// Format limits enforced by the decoder (see decodeChunk for why counts
// are never trusted with pre-allocations).
const (
	maxStringLen  = 1 << 16
	maxRegions    = 1 << 24
	maxProcs      = 1 << 24
	maxProcEvents = 1 << 30
)

// Header is a trace file's global metadata: everything before the first
// per-process stream.
type Header struct {
	Machine    string
	Timer      string
	MinLatency [4]float64
	Regions    []string
	ProcCount  int
}

// HeaderOf extracts the header of an in-memory trace.
func HeaderOf(t *Trace) Header {
	return Header{
		Machine:    t.Machine,
		Timer:      t.Timer,
		MinLatency: t.MinLatency,
		Regions:    t.Regions,
		ProcCount:  len(t.Procs),
	}
}

// MinLatencyBetween returns l_min for a message between two cores, as
// Trace.MinLatencyBetween does for ranks.
func (h *Header) MinLatencyBetween(a, b topology.CoreID) float64 {
	return h.MinLatency[topology.Relate(a, b)]
}

// ProcHeader is one process's stream metadata: the fields of Proc minus
// the events themselves.
type ProcHeader struct {
	Rank       int
	Core       topology.CoreID
	Clock      string
	EventCount int
}

type countingReader struct {
	r io.Reader
	n int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += int64(n)
	return n, err
}

// EventReader decodes a .etr stream incrementally: the header up front,
// then one process at a time, then one event at a time. It never
// allocates ahead of the bytes actually consumed, and reports truncated
// or corrupt input as ErrBadFormat exactly like Read (whose
// implementation it is).
type EventReader struct {
	br        *bufio.Reader
	cr        *countingReader
	header    Header
	procsRead int // processes whose header has been returned
	remaining int // events left in the current process
	inProc    bool
}

// NewEventReader reads and validates the file header.
func NewEventReader(r io.Reader) (*EventReader, error) {
	cr := &countingReader{r: r}
	br := bufio.NewReader(cr)
	er := &EventReader{br: br, cr: cr}
	magic := make([]byte, len(codecMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if string(magic) != codecMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, magic)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if ver != codecVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, ver)
	}
	h := &er.header
	if h.Machine, err = readString(br, maxStringLen); err != nil {
		return nil, badFormat("header", err)
	}
	if h.Timer, err = readString(br, maxStringLen); err != nil {
		return nil, badFormat("header", err)
	}
	for i := range h.MinLatency {
		if h.MinLatency[i], err = readFloat(br); err != nil {
			return nil, badFormat("header", err)
		}
	}
	nRegions, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, badFormat("header", err)
	}
	if nRegions > maxRegions {
		return nil, fmt.Errorf("%w: region table too large", ErrBadFormat)
	}
	h.Regions = make([]string, 0, min(nRegions, decodeChunk))
	for i := uint64(0); i < nRegions; i++ {
		s, err := readString(br, maxStringLen)
		if err != nil {
			return nil, badFormat("region table", err)
		}
		h.Regions = append(h.Regions, s)
	}
	nProcs, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, badFormat("header", err)
	}
	if nProcs > maxProcs {
		return nil, fmt.Errorf("%w: process count too large", ErrBadFormat)
	}
	h.ProcCount = int(nProcs)
	return er, nil
}

// Header returns the file header. The Regions slice is shared, not
// copied.
func (er *EventReader) Header() Header { return er.header }

// Offset reports how many bytes of the underlying stream have been
// consumed by what the reader has returned so far — the file position of
// the next unread element, independent of internal buffering.
func (er *EventReader) Offset() int64 {
	return er.cr.n - int64(er.br.Buffered())
}

// NextProc advances to the next process, skipping any events of the
// current one that were not read. It returns io.EOF after the last
// process.
func (er *EventReader) NextProc() (ProcHeader, error) {
	for er.remaining > 0 {
		var ev Event
		if err := er.Read(&ev); err != nil {
			return ProcHeader{}, err
		}
	}
	if er.procsRead == er.header.ProcCount {
		er.inProc = false
		return ProcHeader{}, io.EOF
	}
	var ph ProcHeader
	rank, err := binary.ReadUvarint(er.br)
	if err != nil {
		return ProcHeader{}, badFormat("process header", err)
	}
	ph.Rank = int(rank)
	var core [3]uint64
	for j := range core {
		if core[j], err = binary.ReadUvarint(er.br); err != nil {
			return ProcHeader{}, badFormat("process header", err)
		}
	}
	ph.Core = topology.CoreID{Node: int(core[0]), Chip: int(core[1]), Core: int(core[2])}
	if ph.Clock, err = readString(er.br, maxStringLen); err != nil {
		return ProcHeader{}, badFormat("process header", err)
	}
	nEvents, err := binary.ReadUvarint(er.br)
	if err != nil {
		return ProcHeader{}, badFormat("event count", err)
	}
	if nEvents > maxProcEvents {
		return ProcHeader{}, fmt.Errorf("%w: event count too large", ErrBadFormat)
	}
	ph.EventCount = int(nEvents)
	er.procsRead++
	er.remaining = ph.EventCount
	er.inProc = true
	return ph, nil
}

// Read decodes the current process's next event into ev. It returns
// io.EOF when the process's declared events are exhausted (call NextProc
// to continue) and ErrBadFormat when the stream ends or corrupts
// mid-event.
func (er *EventReader) Read(ev *Event) error {
	if !er.inProc {
		return fmt.Errorf("trace: EventReader.Read before NextProc")
	}
	if er.remaining == 0 {
		return io.EOF
	}
	if err := readEventFast(er.br, ev); err != nil {
		return badFormat("events", err)
	}
	er.remaining--
	return nil
}

// EventWriter encodes a .etr stream incrementally, mirroring EventReader.
// The codec stores each process's event count before its events, so
// BeginProc must be told the count up front; Close verifies every
// declared process and event was actually written.
type EventWriter struct {
	bw        *bufio.Writer
	cw        *countingWriter
	procCount int
	begun     int
	remaining int // events still owed to the current process
	scratch   []byte
}

// NewEventWriter writes the file header and returns a writer positioned
// before the first process.
func NewEventWriter(w io.Writer, h Header) (*EventWriter, error) {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	ew := &EventWriter{bw: bw, cw: cw, procCount: h.ProcCount, scratch: make([]byte, 0, maxEventSize)}
	if _, err := bw.WriteString(codecMagic); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(codecVersion); err != nil {
		return nil, err
	}
	if err := writeString(bw, h.Machine); err != nil {
		return nil, err
	}
	if err := writeString(bw, h.Timer); err != nil {
		return nil, err
	}
	for _, l := range h.MinLatency {
		if err := writeFloat(bw, l); err != nil {
			return nil, err
		}
	}
	if err := writeUvarint(bw, uint64(len(h.Regions))); err != nil {
		return nil, err
	}
	for _, r := range h.Regions {
		if err := writeString(bw, r); err != nil {
			return nil, err
		}
	}
	if err := writeUvarint(bw, uint64(h.ProcCount)); err != nil {
		return nil, err
	}
	return ew, nil
}

// Offset reports how many bytes have reached the underlying writer plus
// what is buffered — the file position after everything written so far.
func (ew *EventWriter) Offset() int64 {
	return ew.cw.n + int64(ew.bw.Buffered())
}

// BeginProc writes the next process header. The previous process must
// have received exactly its declared events.
func (ew *EventWriter) BeginProc(ph ProcHeader) error {
	if ew.remaining != 0 {
		return fmt.Errorf("trace: BeginProc with %d events still owed to the previous process", ew.remaining)
	}
	if ew.begun == ew.procCount {
		return fmt.Errorf("trace: BeginProc beyond the declared %d processes", ew.procCount)
	}
	if err := writeUvarint(ew.bw, uint64(ph.Rank)); err != nil {
		return err
	}
	for _, c := range [3]int{ph.Core.Node, ph.Core.Chip, ph.Core.Core} {
		if err := writeUvarint(ew.bw, uint64(c)); err != nil {
			return err
		}
	}
	if err := writeString(ew.bw, ph.Clock); err != nil {
		return err
	}
	if err := writeUvarint(ew.bw, uint64(ph.EventCount)); err != nil {
		return err
	}
	ew.begun++
	ew.remaining = ph.EventCount
	return nil
}

// Write encodes one event of the current process. The encoding goes
// through a writer-owned scratch buffer, so the call allocates nothing.
func (ew *EventWriter) Write(ev *Event) error {
	if ew.remaining == 0 {
		return fmt.Errorf("trace: Write beyond the process's declared event count")
	}
	ew.scratch = appendEvent(ew.scratch[:0], ev)
	if _, err := ew.bw.Write(ew.scratch); err != nil {
		return err
	}
	ew.remaining--
	return nil
}

// CopyEvents splices n already-encoded events (as produced by an
// EventEncoder) from r into the current process, without re-decoding
// them. The caller owns the invariant that r really carries n canonical
// event encodings.
func (ew *EventWriter) CopyEvents(r io.Reader, n int) error {
	if n > ew.remaining {
		return fmt.Errorf("trace: CopyEvents of %d events exceeds the %d still declared", n, ew.remaining)
	}
	if err := ew.bw.Flush(); err != nil {
		return err
	}
	if _, err := io.Copy(ew.cw, r); err != nil {
		return err
	}
	ew.remaining -= n
	return nil
}

// Close flushes the stream after verifying that every declared process
// and event was written. It does not close the underlying writer.
func (ew *EventWriter) Close() error {
	if ew.remaining != 0 {
		return fmt.Errorf("trace: Close with %d events still owed to the current process", ew.remaining)
	}
	if ew.begun != ew.procCount {
		return fmt.Errorf("trace: Close after %d of %d declared processes", ew.begun, ew.procCount)
	}
	return ew.bw.Flush()
}

// EventEncoder writes bare event encodings (no header) to a stream — the
// spill-file format of internal/stream, byte-identical to the event
// bytes inside a .etr file.
type EventEncoder struct {
	bw      *bufio.Writer
	n       int
	scratch []byte
}

// NewEventEncoder returns an encoder over w.
func NewEventEncoder(w io.Writer) *EventEncoder {
	return &EventEncoder{bw: bufio.NewWriter(w), scratch: make([]byte, 0, maxEventSize)}
}

// Encode appends one event. Like EventWriter.Write, it encodes into an
// encoder-owned scratch buffer and allocates nothing per call.
func (e *EventEncoder) Encode(ev *Event) error {
	e.scratch = appendEvent(e.scratch[:0], ev)
	_, err := e.bw.Write(e.scratch)
	if err == nil {
		e.n++
	}
	return err
}

// Count reports how many events have been encoded.
func (e *EventEncoder) Count() int { return e.n }

// Flush flushes buffered bytes to the underlying writer.
func (e *EventEncoder) Flush() error { return e.bw.Flush() }

// decoderBufSize sizes the decoder's read buffer: large enough that the
// per-event Peek refill (a memmove plus a read) amortizes over a few
// hundred events.
const decoderBufSize = 1 << 15

// EventDecoder reads bare event encodings (no header) from a stream. It
// returns io.EOF at a clean boundary and ErrBadFormat mid-event.
type EventDecoder struct {
	br *bufio.Reader
}

// NewEventDecoder returns a decoder over r.
func NewEventDecoder(r io.Reader) *EventDecoder {
	return &EventDecoder{br: bufio.NewReaderSize(r, decoderBufSize)}
}

// Decode reads the next event into ev.
func (d *EventDecoder) Decode(ev *Event) error {
	if _, err := d.br.Peek(1); err == io.EOF {
		return io.EOF
	}
	if err := readEventFast(d.br, ev); err != nil {
		return badFormat("events", err)
	}
	return nil
}

// DecodeBatch decodes up to len(evs) events into evs, returning how many
// were filled. A clean end of stream surfaces as (n, io.EOF) with n
// possibly zero; corruption mid-event reports ErrBadFormat. The tight
// loop exists for the slab stages of internal/stream: one call decodes a
// whole slab without per-event interface dispatch in the caller.
func (d *EventDecoder) DecodeBatch(evs []Event) (int, error) {
	for i := range evs {
		if err := d.Decode(&evs[i]); err != nil {
			return i, err
		}
	}
	return len(evs), nil
}
