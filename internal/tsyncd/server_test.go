package tsyncd_test

// Server-side contract tests: concurrent sessions return bytes
// bit-identical to the one-shot pipeline (the CLI's exact code path),
// admission control rejects with typed errors, quotas surface as clean
// protocol failures, stalled clients are reaped, and the client's
// reconnect loop follows its seeded backoff schedule.

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"tsync/internal/backoff"
	"tsync/internal/core"
	"tsync/internal/faultinject"
	"tsync/internal/stream"
	"tsync/internal/trace"
	"tsync/internal/tsyncd"
	"tsync/internal/xrand"
)

const serverSeed = 0x75e4cd10

// testServer runs a Server over a loopback listener with an
// idempotent shutdown.
type testServer struct {
	srv    *tsyncd.Server
	ln     net.Listener
	cancel context.CancelFunc
	done   chan error
	once   sync.Once
	err    error
}

func startServer(t *testing.T, cfg tsyncd.Config) *testServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ts := &testServer{srv: tsyncd.New(cfg), ln: ln, cancel: cancel, done: make(chan error, 1)}
	go func() { ts.done <- ts.srv.Serve(ctx, ln) }()
	t.Cleanup(func() {
		if err := ts.shutdown(); err != nil {
			t.Errorf("server shutdown: %v", err)
		}
	})
	return ts
}

func (ts *testServer) addr() string { return ts.ln.Addr().String() }

// shutdown cancels the serve context and waits for the full drain.
func (ts *testServer) shutdown() error {
	ts.once.Do(func() {
		ts.cancel()
		ts.err = <-ts.done
	})
	return ts.err
}

func (ts *testServer) client(seed uint64) *tsyncd.Client {
	return tsyncd.NewClient(tsyncd.ClientConfig{
		Addr: ts.addr(), Seed: seed, Timeout: 10 * time.Second,
	})
}

// corpus is one input trace with its reference outcome.
type corpus struct {
	name  string
	data  []byte
	hello tsyncd.Hello
	// wantBytes/wantChecksum/wantResult come from running the identical
	// stream.Pipeline directly — the CLI's exact code path.
	wantBytes    []byte
	wantChecksum string
	wantPartial  bool
	wantResult   *stream.Result
}

// synthBytes renders one synthetic trace into memory.
func synthBytes(t *testing.T, spec stream.SynthSpec) ([]byte, []trace.Event, tsyncd.Hello) {
	t.Helper()
	var buf bytes.Buffer
	init, fin, err := stream.Synth(spec, &buf)
	if err != nil {
		t.Fatal(err)
	}
	h := tsyncd.Hello{Base: "interp", CLC: true, WantTrace: true, Init: init, Fin: fin}
	return buf.Bytes(), nil, h
}

// reference runs the pipeline the way cmd/tracesync would and records
// the expected bytes, checksum, and result.
func reference(t *testing.T, c *corpus) {
	t.Helper()
	src, err := stream.NewSourceOpts(bytes.NewReader(c.data), stream.SourceOptions{
		Salvage: c.hello.Salvage, MaxSkipBytes: c.hello.MaxSkipBytes,
	})
	if err != nil {
		t.Fatalf("%s: reference source: %v", c.name, err)
	}
	b, err := core.ParseBase(c.hello.Base)
	if err != nil {
		t.Fatal(err)
	}
	pipe := stream.Pipeline{
		Base: b, CLC: c.hello.CLC,
		Options: stream.Options{Window: c.hello.Window, Salvage: c.hello.Salvage},
	}
	var out bytes.Buffer
	res, err := pipe.RunContext(context.Background(), src, &out, c.hello.Init, c.hello.Fin)
	if err != nil {
		t.Fatalf("%s: reference run: %v", c.name, err)
	}
	h := fnv.New64a()
	h.Write(out.Bytes())
	c.wantBytes = out.Bytes()
	c.wantChecksum = fmt.Sprintf("%016x", h.Sum64())
	c.wantPartial = src.Salvaged()
	c.wantResult = res
}

// buildCorpus returns the acceptance mix: v1, v2 row, v2 columnar, and
// a salvaged (deterministically corrupted) v2 trace.
func buildCorpus(t *testing.T) []*corpus {
	t.Helper()
	var cs []*corpus
	add := func(name string, data []byte, h tsyncd.Hello) {
		c := &corpus{name: name, data: data, hello: h}
		reference(t, c)
		cs = append(cs, c)
	}

	d1, _, h1 := synthBytes(t, stream.SynthSpec{Ranks: 4, Steps: 300, CollEvery: 6, Seed: xrand.SeedAt(serverSeed, 0)})
	add("v1", d1, h1)

	d2, _, h2 := synthBytes(t, stream.SynthSpec{Ranks: 3, Steps: 400, CollEvery: 5, Seed: xrand.SeedAt(serverSeed, 1), Version: trace.Version2})
	add("v2-row", d2, h2)

	d3, _, h3 := synthBytes(t, stream.SynthSpec{Ranks: 5, Steps: 200, CollEvery: 4, Seed: xrand.SeedAt(serverSeed, 2), Version: trace.Version2, Columnar: true})
	add("v2-columnar", d3, h3)

	d4, _, h4 := synthBytes(t, stream.SynthSpec{Ranks: 4, Steps: 500, CollEvery: 8, Seed: xrand.SeedAt(serverSeed, 3), Version: trace.Version2})
	flips := faultinject.NewBurstFlips(xrand.SeedAt(serverSeed, 4), int64(len(d4)), 3, 64)
	corrupted := make([]byte, len(d4))
	copy(corrupted, d4)
	flips.Apply(corrupted, 0)
	h4.Salvage = true
	add("v2-salvaged", corrupted, h4)

	return cs
}

// TestLoopbackBitIdentical is the tentpole acceptance: 8 concurrent
// sessions over loopback, spanning v1/v2/columnar/salvage inputs, each
// returning bytes and analysis results bit-identical to the direct
// pipeline run, with matching FNV checksums.
func TestLoopbackBitIdentical(t *testing.T) {
	corpora := buildCorpus(t)
	ts := startServer(t, tsyncd.Config{MaxSessions: 4, MaxQueue: 16})

	const sessions = 8
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		c := corpora[i%len(corpora)]
		wg.Add(1)
		go func(i int, c *corpus) {
			defer wg.Done()
			var out bytes.Buffer
			done, err := ts.client(xrand.SeedAt(serverSeed, 10+uint64(i))).Sync(
				context.Background(), c.hello, bytes.NewReader(c.data), &out)
			if err != nil {
				errs <- fmt.Errorf("session %d (%s): %w", i, c.name, err)
				return
			}
			if !bytes.Equal(out.Bytes(), c.wantBytes) {
				errs <- fmt.Errorf("session %d (%s): %d returned bytes differ from the direct pipeline's %d", i, c.name, out.Len(), len(c.wantBytes))
				return
			}
			if done.Checksum != c.wantChecksum {
				errs <- fmt.Errorf("session %d (%s): checksum %s, want %s", i, c.name, done.Checksum, c.wantChecksum)
				return
			}
			if done.Partial != c.wantPartial {
				errs <- fmt.Errorf("session %d (%s): partial=%v, want %v", i, c.name, done.Partial, c.wantPartial)
				return
			}
			if !resultsEqual(done.Result, c.wantResult) {
				errs <- fmt.Errorf("session %d (%s): analysis result differs from the direct pipeline's", i, c.name)
			}
		}(i, c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// resultsEqual compares analysis results through their JSON rendering —
// the same canonical form the wire uses, covering every exported field.
func resultsEqual(a, b *stream.Result) bool {
	ab, aerr := json.Marshal(a)
	bb, berr := json.Marshal(b)
	return aerr == nil && berr == nil && bytes.Equal(ab, bb)
}

// rawConn opens a raw protocol connection for tests that speak frames
// by hand.
func rawConn(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func sendFrame(t *testing.T, conn net.Conn, typ byte, payload []byte) {
	t.Helper()
	buf := make([]byte, 5+len(payload))
	buf[0] = typ
	binary.LittleEndian.PutUint32(buf[1:5], uint32(len(payload)))
	copy(buf[5:], payload)
	if _, err := conn.Write(buf); err != nil {
		t.Fatal(err)
	}
}

func sendJSON(t *testing.T, conn net.Conn, typ byte, v any) {
	t.Helper()
	blob, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	sendFrame(t, conn, typ, blob)
}

// readReply reads one server frame.
func readReply(t *testing.T, conn net.Conn) (byte, []byte) {
	t.Helper()
	var hdr [5]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		t.Fatalf("read frame header: %v", err)
	}
	payload := make([]byte, binary.LittleEndian.Uint32(hdr[1:5]))
	if _, err := io.ReadFull(conn, payload); err != nil {
		t.Fatalf("read frame payload: %v", err)
	}
	return hdr[0], payload
}

// expectError asserts the next server frame is a REJECT or ERROR with
// the given code.
func expectError(t *testing.T, conn net.Conn, want tsyncd.Code) {
	t.Helper()
	typ, payload := readReply(t, conn)
	if typ != 0x12 && typ != 0x16 {
		t.Fatalf("frame type %#x, want REJECT/ERROR (payload %q)", typ, payload)
	}
	var perr tsyncd.Error
	if err := json.Unmarshal(payload, &perr); err != nil {
		t.Fatalf("undecodable error payload %q", payload)
	}
	if perr.Code != want {
		t.Fatalf("error code %q (%s), want %q", perr.Code, perr.Msg, want)
	}
}

// holdSession opens a session and parks it mid-upload, occupying a
// slot until release is called.
func holdSession(t *testing.T, addr string) (release func()) {
	t.Helper()
	conn := rawConn(t, addr)
	sendJSON(t, conn, 0x01, tsyncd.Hello{Base: "none"})
	typ, payload := readReply(t, conn)
	if typ != 0x11 {
		t.Fatalf("holder got frame %#x (%q), want ACCEPT", typ, payload)
	}
	return func() { conn.Close() }
}

func TestAdmissionBusy(t *testing.T) {
	ts := startServer(t, tsyncd.Config{MaxSessions: 1, MaxQueue: -1})
	release := holdSession(t, ts.addr())
	defer release()

	conn := rawConn(t, ts.addr())
	sendJSON(t, conn, 0x01, tsyncd.Hello{Base: "none"})
	expectError(t, conn, tsyncd.CodeBusy)
}

func TestAdmissionQueueTimeout(t *testing.T) {
	ts := startServer(t, tsyncd.Config{MaxSessions: 1, MaxQueue: 4, QueueTimeout: 50 * time.Millisecond})
	release := holdSession(t, ts.addr())
	defer release()

	conn := rawConn(t, ts.addr())
	sendJSON(t, conn, 0x01, tsyncd.Hello{Base: "none"})
	expectError(t, conn, tsyncd.CodeQueueTimeout)
}

func TestDrainingRejectsUpload(t *testing.T) {
	ts := startServer(t, tsyncd.Config{MaxSessions: 2, DrainTimeout: 5 * time.Second})
	conn := rawConn(t, ts.addr())
	sendJSON(t, conn, 0x01, tsyncd.Hello{Base: "none"})
	if typ, payload := readReply(t, conn); typ != 0x11 {
		t.Fatalf("frame %#x (%q), want ACCEPT", typ, payload)
	}
	// Begin the drain, then keep uploading: the spool loop must refuse
	// with a classified draining error (possibly one frame later — the
	// poll sits at the top of the loop).
	ts.cancel()
	sendFrame(t, conn, 0x02, []byte("data"))
	sendFrame(t, conn, 0x02, []byte("data"))
	expectError(t, conn, tsyncd.CodeDraining)
	conn.Close()
	if err := ts.shutdown(); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestQuotaBytes(t *testing.T) {
	ts := startServer(t, tsyncd.Config{DefaultQuota: tsyncd.Quota{MaxBytes: 64}})
	conn := rawConn(t, ts.addr())
	sendJSON(t, conn, 0x01, tsyncd.Hello{Base: "none", Tenant: "smallco"})
	if typ, _ := readReply(t, conn); typ != 0x11 {
		t.Fatal("want ACCEPT")
	}
	sendFrame(t, conn, 0x02, make([]byte, 128))
	expectError(t, conn, tsyncd.CodeQuotaBytes)
}

func TestQuotaEvents(t *testing.T) {
	data, _, hello := synthBytes(t, stream.SynthSpec{Ranks: 2, Steps: 50, Seed: xrand.SeedAt(serverSeed, 20)})
	ts := startServer(t, tsyncd.Config{DefaultQuota: tsyncd.Quota{MaxEvents: 10}})
	_, err := ts.client(1).Sync(context.Background(), hello, bytes.NewReader(data), nil)
	var perr *tsyncd.Error
	if !errors.As(err, &perr) || perr.Code != tsyncd.CodeQuotaEvents {
		t.Fatalf("got %v, want quota-events", err)
	}
}

func TestQuotaSpill(t *testing.T) {
	// Every CLC run spills 8 bytes per event of finalized timestamps, so
	// a tiny spill budget must fail any non-trivial session — cleanly.
	data, _, hello := synthBytes(t, stream.SynthSpec{Ranks: 3, Steps: 200, CollEvery: 4, Seed: xrand.SeedAt(serverSeed, 21)})
	ts := startServer(t, tsyncd.Config{
		DefaultQuota: tsyncd.Quota{MaxSpillBytes: 256},
		SpillFS:      faultinject.NewFS(-1),
	})
	_, err := ts.client(1).Sync(context.Background(), hello, bytes.NewReader(data), nil)
	var perr *tsyncd.Error
	if !errors.As(err, &perr) || perr.Code != tsyncd.CodeQuotaSpill {
		t.Fatalf("got %v, want quota-spill", err)
	}
}

// TestIdleReap: a slow-loris client (half a frame header, then silence)
// is reaped at the idle deadline with a classified error, while a
// well-behaved concurrent session completes untouched.
func TestIdleReap(t *testing.T) {
	data, _, hello := synthBytes(t, stream.SynthSpec{Ranks: 2, Steps: 100, Seed: xrand.SeedAt(serverSeed, 22)})
	ts := startServer(t, tsyncd.Config{MaxSessions: 4, IdleTimeout: 150 * time.Millisecond})

	loris := rawConn(t, ts.addr())
	if _, err := loris.Write([]byte{0x01, 0xff}); err != nil { // a stalled, partial HELLO
		t.Fatal(err)
	}

	if _, err := ts.client(1).Sync(context.Background(), hello, bytes.NewReader(data), nil); err != nil {
		t.Fatalf("well-behaved session alongside a slow loris: %v", err)
	}
	expectError(t, loris, tsyncd.CodeIdleTimeout)
}

func TestMalformedFrames(t *testing.T) {
	ts := startServer(t, tsyncd.Config{})

	t.Run("bad-first-frame-type", func(t *testing.T) {
		conn := rawConn(t, ts.addr())
		sendFrame(t, conn, 0x02, []byte("data before hello"))
		expectError(t, conn, tsyncd.CodeMalformed)
	})
	t.Run("oversized-frame", func(t *testing.T) {
		conn := rawConn(t, ts.addr())
		hdr := []byte{0x01, 0xff, 0xff, 0xff, 0xff}
		if _, err := conn.Write(hdr); err != nil {
			t.Fatal(err)
		}
		expectError(t, conn, tsyncd.CodeMalformed)
	})
	t.Run("undecodable-hello", func(t *testing.T) {
		conn := rawConn(t, ts.addr())
		sendFrame(t, conn, 0x01, []byte("{not json"))
		expectError(t, conn, tsyncd.CodeMalformed)
	})
	t.Run("unknown-base", func(t *testing.T) {
		conn := rawConn(t, ts.addr())
		sendJSON(t, conn, 0x01, tsyncd.Hello{Base: "quantum"})
		expectError(t, conn, tsyncd.CodeMalformed)
	})
	t.Run("bad-trace-bytes", func(t *testing.T) {
		conn := rawConn(t, ts.addr())
		sendJSON(t, conn, 0x01, tsyncd.Hello{Base: "none"})
		if typ, _ := readReply(t, conn); typ != 0x11 {
			t.Fatal("want ACCEPT")
		}
		sendFrame(t, conn, 0x02, []byte("this is no trace"))
		sendFrame(t, conn, 0x03, nil)
		expectError(t, conn, tsyncd.CodeBadTrace)
	})
}

// TestClientAbort: fAbort mid-upload yields a classified aborted error.
func TestClientAbort(t *testing.T) {
	ts := startServer(t, tsyncd.Config{})
	conn := rawConn(t, ts.addr())
	sendJSON(t, conn, 0x01, tsyncd.Hello{Base: "none"})
	if typ, _ := readReply(t, conn); typ != 0x11 {
		t.Fatal("want ACCEPT")
	}
	sendFrame(t, conn, 0x02, []byte("partial"))
	sendFrame(t, conn, 0x04, nil)
	expectError(t, conn, tsyncd.CodeAborted)
}

// TestClientReconnect: the first dials fail, the retry schedule follows
// the seeded backoff exactly, and the session then completes.
func TestClientReconnect(t *testing.T) {
	data, _, hello := synthBytes(t, stream.SynthSpec{Ranks: 2, Steps: 100, Seed: xrand.SeedAt(serverSeed, 30)})
	ts := startServer(t, tsyncd.Config{})

	fails := 2
	var delays []time.Duration
	cl := tsyncd.NewClient(tsyncd.ClientConfig{
		Seed: 7, Attempts: 5, Timeout: 10 * time.Second,
		Dial: func(ctx context.Context) (net.Conn, error) {
			if fails > 0 {
				fails--
				return nil, errors.New("connection refused (injected)")
			}
			var d net.Dialer
			return d.DialContext(ctx, "tcp", ts.addr())
		},
		Sleep: func(ctx context.Context, d time.Duration) error {
			delays = append(delays, d)
			return nil
		},
	})
	done, err := cl.Sync(context.Background(), hello, bytes.NewReader(data), nil)
	if err != nil {
		t.Fatal(err)
	}
	if done.Checksum == "" {
		t.Fatal("no checksum in Done")
	}

	// The recorded delays must be exactly the seeded schedule.
	want := backoff.New(backoff.Default(), 7)
	if len(delays) != 2 {
		t.Fatalf("%d reconnect sleeps, want 2", len(delays))
	}
	for i, d := range delays {
		if w := want.Next(); d != w {
			t.Errorf("delay %d = %v, want %v (seeded schedule)", i, d, w)
		}
	}
}

// TestClientPermanentErrorNoRetry: classified failures must not retry.
func TestClientPermanentErrorNoRetry(t *testing.T) {
	ts := startServer(t, tsyncd.Config{DefaultQuota: tsyncd.Quota{MaxBytes: 16}})
	dials := 0
	cl := tsyncd.NewClient(tsyncd.ClientConfig{
		Seed: 1, Attempts: 5, Timeout: 10 * time.Second,
		Dial: func(ctx context.Context) (net.Conn, error) {
			dials++
			var d net.Dialer
			return d.DialContext(ctx, "tcp", ts.addr())
		},
		Sleep: func(ctx context.Context, d time.Duration) error { return nil },
	})
	_, err := cl.Sync(context.Background(), tsyncd.Hello{Base: "none"}, bytes.NewReader(make([]byte, 256)), nil)
	var perr *tsyncd.Error
	if !errors.As(err, &perr) || perr.Code != tsyncd.CodeQuotaBytes {
		t.Fatalf("got %v, want quota-bytes", err)
	}
	if dials != 1 {
		t.Fatalf("%d dials for a permanent failure, want 1", dials)
	}
}

// TestPingPong: keepalives are answered during upload.
func TestPingPong(t *testing.T) {
	ts := startServer(t, tsyncd.Config{})
	conn := rawConn(t, ts.addr())
	sendJSON(t, conn, 0x01, tsyncd.Hello{Base: "none"})
	if typ, _ := readReply(t, conn); typ != 0x11 {
		t.Fatal("want ACCEPT")
	}
	sendFrame(t, conn, 0x05, nil)
	if typ, _ := readReply(t, conn); typ != 0x17 {
		t.Fatalf("frame %#x, want PONG", typ)
	}
}

// TestResultEquality guards the JSON comparison helper itself.
func TestResultEquality(t *testing.T) {
	a := &stream.Result{Stats: stream.Stats{Events: 7}}
	b := &stream.Result{Stats: stream.Stats{Events: 7}}
	if !resultsEqual(a, b) {
		t.Fatal("equal results compare unequal")
	}
	b.Stats.Events = 8
	if resultsEqual(a, b) {
		t.Fatal("different results compare equal")
	}
	if !reflect.DeepEqual(a, &stream.Result{Stats: stream.Stats{Events: 7}}) {
		t.Fatal("sanity: DeepEqual disagrees")
	}
}
