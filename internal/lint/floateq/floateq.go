// Package floateq defines an analyzer that flags exact ==/!= comparisons
// between float64 timestamp expressions.
//
// The paper's central observation is that timestamps from drifting clocks
// carry errors of tens of microseconds per second (Fig. 4) and that
// corrections (Eq. 3, the controlled logical clock) produce values that
// are equal only up to the arithmetic of the pipeline that made them.
// Exact float equality on such values encodes an assumption — that two
// independently derived times are bit-for-bit identical — which drift,
// interpolation and rounding all break. Use stats.ApproxEqual(a, b, tol)
// instead, which combines absolute and relative tolerance.
//
// A comparison is flagged when either operand has floating-point type and
// is named like a timestamp (Time, Timestamp, Offset, Latency, LMin,
// Delay, Skew, Drift — case-insensitive suffix match), except:
//
//   - comparisons against the literal 0 (zero is the conventional "unset"
//     sentinel, assigned exactly and never the result of arithmetic);
//   - self-comparison x != x (the portable NaN test);
//   - lines annotated with a "tsync:exact" comment, for intentional
//     bit-for-bit checks such as determinism tests that replay the same
//     pipeline twice.
package floateq

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"tsync/internal/lint"
)

const doc = `flag exact ==/!= between float64 timestamp expressions

Drifting clocks make exact equality of timestamps meaningless; compare
with stats.ApproxEqual(a, b, tol) or annotate the line with a
"tsync:exact" comment when a bit-for-bit check is intended.`

// Analyzer is the floateq analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "floateq",
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// timestampSuffixes are the lower-case name endings that mark an
// expression as carrying a timestamp, an offset between clocks, or a
// latency — the quantities the paper manipulates.
var timestampSuffixes = []string{
	"time", "times", "timestamp", "timestamps",
	"offset", "offsets",
	"latency", "latencies",
	"lmin", "delay", "skew", "drift",
}

func run(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.BinaryExpr)(nil)}, func(n ast.Node) {
		be := n.(*ast.BinaryExpr)
		if be.Op != token.EQL && be.Op != token.NEQ {
			return
		}
		lname, lfloat := timestampOperand(pass, be.X)
		rname, rfloat := timestampOperand(pass, be.Y)
		name := lname
		if name == "" {
			name = rname
		}
		if name == "" || !(lfloat || rfloat) {
			return
		}
		if isZeroLiteral(be.X) || isZeroLiteral(be.Y) {
			return
		}
		if isSelfComparison(be) {
			return
		}
		if lint.HasLineDirective(pass, be.Pos(), "tsync:exact") {
			return
		}
		pass.Reportf(be.Pos(), "exact %s comparison on float64 timestamp %q: drifting clocks make exact equality meaningless; use stats.ApproxEqual or annotate the line with a tsync:exact comment", be.Op, name)
	})
	return nil, nil
}

// timestampOperand reports whether e is a floating-point expression whose
// name marks it as a timestamp; it returns the matched name (empty if the
// name does not match) and whether the type is floating point.
func timestampOperand(pass *analysis.Pass, e ast.Expr) (name string, isFloat bool) {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return "", false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsFloat == 0 {
		return "", false
	}
	n := exprName(e)
	low := strings.ToLower(n)
	for _, suf := range timestampSuffixes {
		if strings.HasSuffix(low, suf) {
			return n, true
		}
	}
	return "", true
}

// exprName digs the identifying name out of an operand: the selector's
// field for evs[i].Time, the identifier for a plain variable, the indexed
// expression's name for offsets[i].
func exprName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return exprName(e.X)
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr:
		return exprName(e.X)
	case *ast.CallExpr:
		return exprName(e.Fun)
	}
	return ""
}

func isZeroLiteral(e ast.Expr) bool {
	if p, ok := e.(*ast.ParenExpr); ok {
		return isZeroLiteral(p.X)
	}
	bl, ok := e.(*ast.BasicLit)
	if !ok {
		return false
	}
	switch bl.Value {
	case "0", "0.0", "0.", ".0":
		return true
	}
	return false
}

// isSelfComparison recognises x != x / x == x, the portable NaN test.
func isSelfComparison(be *ast.BinaryExpr) bool {
	return types.ExprString(be.X) == types.ExprString(be.Y)
}
