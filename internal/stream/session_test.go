package stream_test

// Session lifecycle tests: a Session runs exactly once, its state
// machine moves strictly forward, Abort cancels a running pipeline
// promptly and cleanly, and the Session wrapper changes nothing about
// the bytes a run produces (Pipeline.RunContext is the same code path).

import (
	"bytes"
	"context"
	"errors"
	"math"
	"os"
	"runtime"
	"testing"

	"tsync/internal/core"
	"tsync/internal/faultinject"
	"tsync/internal/stream"
	"tsync/internal/xrand"
)

const sessionSeed = 0x5e551044

// TestSessionLifecycle drives a session through the happy path and
// checks every lifecycle guard around it.
func TestSessionLifecycle(t *testing.T) {
	path, init, fin := synthFile(t, stream.SynthSpec{
		Ranks: 3, Steps: 200, CollEvery: 8, Seed: xrand.SeedAt(sessionSeed, 0),
	})
	src := openSource(t, path)

	s := stream.NewSession(stream.Pipeline{Base: core.BaseInterp, CLC: true}, src)
	if got := s.State(); got != stream.SessionNew {
		t.Fatalf("fresh session state = %v, want new", got)
	}
	if s.Source() != src {
		t.Fatal("Source() does not return the constructor's source")
	}
	if _, err := s.Result(); !errors.Is(err, stream.ErrSessionState) {
		t.Fatalf("Result before Run: got %v, want ErrSessionState", err)
	}

	var out bytes.Buffer
	res, err := s.Run(context.Background(), &out, init, fin)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.State(); got != stream.SessionDone {
		t.Fatalf("state after Run = %v, want done", got)
	}
	got, gotErr := s.Result()
	if gotErr != nil || got != res {
		t.Fatalf("Result() = (%p, %v), want the Run outcome (%p, nil)", got, gotErr, res)
	}

	// A session runs at most once.
	if _, err := s.Run(context.Background(), nil, init, fin); !errors.Is(err, stream.ErrSessionState) {
		t.Fatalf("second Run: got %v, want ErrSessionState", err)
	}
	// Abort on a finished session is a no-op.
	s.Abort()
	if got := s.State(); got != stream.SessionDone {
		t.Fatalf("state after late Abort = %v, want done", got)
	}
}

// TestSessionMatchesPipeline: wrapping a run in a Session is invisible
// in the output — the bytes equal a direct Pipeline.RunContext run.
func TestSessionMatchesPipeline(t *testing.T) {
	path, init, fin := synthFile(t, stream.SynthSpec{
		Ranks: 4, Steps: 300, CollEvery: 6, Seed: xrand.SeedAt(sessionSeed, 1),
	})
	p := stream.Pipeline{Base: core.BaseInterp, CLC: true}

	var direct bytes.Buffer
	if _, err := p.RunContext(context.Background(), openSource(t, path), &direct, init, fin); err != nil {
		t.Fatal(err)
	}
	var viaSession bytes.Buffer
	if _, err := stream.NewSession(p, openSource(t, path)).Run(context.Background(), &viaSession, init, fin); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct.Bytes(), viaSession.Bytes()) {
		t.Fatalf("session output differs from direct pipeline output (%d vs %d bytes)", viaSession.Len(), direct.Len())
	}
}

// TestSessionAbortBeforeRun: aborting a New session moves it to Aborted
// and Run refuses to start.
func TestSessionAbortBeforeRun(t *testing.T) {
	path, init, fin := synthFile(t, stream.SynthSpec{
		Ranks: 2, Steps: 50, Seed: xrand.SeedAt(sessionSeed, 2),
	})
	s := stream.NewSession(stream.Pipeline{Base: core.BaseNone}, openSource(t, path))
	s.Abort()
	if got := s.State(); got != stream.SessionAborted {
		t.Fatalf("state after pre-Run Abort = %v, want aborted", got)
	}
	if _, err := s.Run(context.Background(), nil, init, fin); !errors.Is(err, stream.ErrSessionState) {
		t.Fatalf("Run after Abort: got %v, want ErrSessionState", err)
	}
	if _, err := s.Result(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Result after pre-Run Abort: got %v, want context.Canceled", err)
	}
}

// TestSessionAbortDuringRun aborts a session from inside the walk (a
// deterministic read hook, no timers) and requires the same clean
// teardown the cancellation tests demand: context.Canceled, no leaked
// goroutines, no leftover spill files, state Aborted.
func TestSessionAbortDuringRun(t *testing.T) {
	var buf bytes.Buffer
	if _, _, err := stream.Synth(stream.SynthSpec{
		Ranks: 3, Steps: 2000, CollEvery: 4, Seed: xrand.SeedAt(sessionSeed, 3),
	}, &buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	tmp := t.TempDir()
	t.Setenv("TMPDIR", tmp)
	base := runtime.NumGoroutine()

	var s *stream.Session
	hook := &faultinject.HookReaderAt{
		R:      bytes.NewReader(data),
		Offset: math.MaxInt64, // inert during the index pass
		Fn:     func() { s.Abort() },
	}
	src, err := stream.NewSource(hook)
	if err != nil {
		t.Fatal(err)
	}
	hook.Offset = int64(len(data)) / 2 // arm: first walk read past the middle aborts
	s = stream.NewSession(stream.Pipeline{Base: core.BaseNone, CLC: true}, src)

	var out bytes.Buffer
	_, err = s.Run(context.Background(), &out, nil, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("aborted Run: got %v, want context.Canceled", err)
	}
	if got := s.State(); got != stream.SessionAborted {
		t.Fatalf("state after mid-run Abort = %v, want aborted", got)
	}
	if _, rerr := s.Result(); !errors.Is(rerr, context.Canceled) {
		t.Fatalf("Result after mid-run Abort: got %v, want context.Canceled", rerr)
	}
	waitGoroutines(t, base)
	ents, err := os.ReadDir(tmp)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		t.Errorf("leftover spill entry after abort: %s", e.Name())
	}
}

// TestSessionExternalCancel: a cancellation arriving through Run's own
// context (not Abort) is a failure, not an abort — the two are
// distinguishable states.
func TestSessionExternalCancel(t *testing.T) {
	path, init, fin := synthFile(t, stream.SynthSpec{
		Ranks: 2, Steps: 50, Seed: xrand.SeedAt(sessionSeed, 4),
	})
	s := stream.NewSession(stream.Pipeline{Base: core.BaseNone}, openSource(t, path))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Run(ctx, nil, init, fin); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled Run: got %v, want context.Canceled", err)
	}
	if got := s.State(); got != stream.SessionFailed {
		t.Fatalf("state after external cancel = %v, want failed", got)
	}
}

// TestSessionStateString pins the diagnostic spellings typed protocol
// errors embed.
func TestSessionStateString(t *testing.T) {
	want := map[stream.SessionState]string{
		stream.SessionNew:       "new",
		stream.SessionRunning:   "running",
		stream.SessionDone:      "done",
		stream.SessionFailed:    "failed",
		stream.SessionAborted:   "aborted",
		stream.SessionState(99): "SessionState(99)",
	}
	for st, name := range want {
		if got := st.String(); got != name {
			t.Errorf("SessionState(%d).String() = %q, want %q", int32(st), got, name)
		}
	}
}
