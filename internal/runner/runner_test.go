package runner

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"tsync/internal/xrand"
)

func TestMapPreservesTaskOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		got, err := Map(New(workers), 37, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 37 {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: results[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapZeroTasks(t *testing.T) {
	got, err := Map(New(4), 0, func(i int) (int, error) { return 0, errors.New("never called") })
	if err != nil || len(got) != 0 {
		t.Fatalf("n=0: %v, %v", got, err)
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	// tasks 3, 5 and 11 fail; the reported error must be task 3's on
	// every worker count, even though completion order varies
	for _, workers := range []int{1, 2, 8} {
		ran := make([]bool, 16)
		_, err := Map(New(workers), 16, func(i int) (int, error) {
			ran[i] = true //tsync:locked — disjoint index per task, read after Map returns
			if i == 3 || i == 5 || i == 11 {
				return 0, fmt.Errorf("task %d failed", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "task 3 failed" {
			t.Fatalf("workers=%d: err = %v, want task 3's", workers, err)
		}
		for i, r := range ran {
			if !r {
				t.Fatalf("workers=%d: task %d skipped after failure; all tasks must run", workers, i)
			}
		}
	}
}

func TestSeedMatchesSplitmixStream(t *testing.T) {
	// Seed(base, i) must be the i-th output of a sequentially advanced
	// splitmix64 stream — the O(1) jump may not diverge from the walk
	const base = 0xfeedface
	state := uint64(base)
	for i := 0; i < 1000; i++ {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		want := z ^ (z >> 31)
		if got := Seed(base, i); got != want {
			t.Fatalf("Seed(%#x, %d) = %#x, want %#x", uint64(base), i, got, want)
		}
	}
}

func TestSeedsDistinct(t *testing.T) {
	seen := map[uint64]int{}
	for i := 0; i < 10000; i++ {
		s := Seed(42, i)
		if j, dup := seen[s]; dup {
			t.Fatalf("Seed(42, %d) == Seed(42, %d)", i, j)
		}
		seen[s] = i
	}
}

// simulate mimics an experiment repetition: a chain of floating-point
// work driven entirely by the task seed. Any cross-task state leak or
// order dependence would change its output.
func simulate(seed uint64) float64 {
	src := xrand.NewSource(seed)
	acc := 0.0
	for i := 0; i < 2000; i++ {
		acc += math.Sin(src.Normal(0, 1)) * src.Exponential(0.5)
	}
	return acc
}

// TestMapInvariance is the engine's core property test: for arbitrary base
// seeds and task counts, the fan-out must produce bit-identical results at
// every worker count.
func TestMapInvariance(t *testing.T) {
	check := func(base uint64, nRaw uint8) bool {
		n := int(nRaw%16) + 1
		var ref []float64
		for _, workers := range []int{1, 2, 3, 8} {
			got, err := Map(New(workers), n, func(i int) (float64, error) {
				return simulate(Seed(base, i)), nil
			})
			if err != nil {
				return false
			}
			if ref == nil {
				ref = got
				continue
			}
			for i := range got {
				// bit-identical, not approximately equal
				if math.Float64bits(got[i]) != math.Float64bits(ref[i]) {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}
