package lclock

import (
	"testing"

	"tsync/internal/clock"
	"tsync/internal/mpi"
	"tsync/internal/stats"
	"tsync/internal/topology"
	"tsync/internal/trace"
)

// chainTrace: rank 0 sends to 1, 1 sends to 2.
func chainTrace() *trace.Trace {
	return &trace.Trace{Procs: []trace.Proc{
		{Rank: 0, Events: []trace.Event{
			{Kind: trace.Send, Time: 1, True: 1, Partner: 1},
		}},
		{Rank: 1, Events: []trace.Event{
			{Kind: trace.Recv, Time: 2, True: 2, Partner: 0},
			{Kind: trace.Send, Time: 3, True: 3, Partner: 2},
		}},
		{Rank: 2, Events: []trace.Event{
			{Kind: trace.Recv, Time: 4, True: 4, Partner: 1},
		}},
	}}
}

func TestLamportChain(t *testing.T) {
	lc, err := Lamport(chainTrace())
	if err != nil {
		t.Fatal(err)
	}
	if !(lc[0][0] < lc[1][0] && lc[1][0] < lc[1][1] && lc[1][1] < lc[2][0]) {
		t.Fatalf("Lamport order broken: %v", lc)
	}
}

func TestLamportRespectsEdgesEvenWithLyingTimestamps(t *testing.T) {
	tr := chainTrace()
	// timestamps reversed: logical clocks must not care
	tr.Procs[1].Events[0].Time = 0.5
	tr.Procs[2].Events[0].Time = 0.1
	lc, err := Lamport(tr)
	if err != nil {
		t.Fatal(err)
	}
	if lc[1][0] <= lc[0][0] || lc[2][0] <= lc[1][1] {
		t.Fatalf("Lamport followed wrong order: %v", lc)
	}
}

func TestVectorsChain(t *testing.T) {
	vc, err := Vectors(chainTrace())
	if err != nil {
		t.Fatal(err)
	}
	send0 := EventRef{0, 0}
	recv2 := EventRef{2, 0}
	if !HappenedBefore(vc, send0, recv2) {
		t.Fatalf("transitive happened-before lost: %v !< %v", vc[0][0], vc[2][0])
	}
	if HappenedBefore(vc, recv2, send0) {
		t.Fatalf("happened-before inverted")
	}
}

func TestVectorsConcurrency(t *testing.T) {
	// two ranks with no communication: all pairs concurrent
	tr := &trace.Trace{Procs: []trace.Proc{
		{Rank: 0, Events: []trace.Event{{Kind: trace.Enter, Time: 1, True: 1, Region: -1}}},
		{Rank: 1, Events: []trace.Event{{Kind: trace.Enter, Time: 2, True: 2, Region: -1}}},
	}}
	vc, err := Vectors(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !vc[0][0].Concurrent(vc[1][0]) {
		t.Fatalf("independent events not concurrent: %v vs %v", vc[0][0], vc[1][0])
	}
}

func TestVectorOperations(t *testing.T) {
	a := Vector{1, 2, 3}
	b := Vector{2, 2, 3}
	if !a.Less(b) || b.Less(a) {
		t.Fatalf("Less broken")
	}
	if !a.Equal(a) || a.Equal(b) {
		t.Fatalf("Equal broken")
	}
	c := Vector{0, 9, 0}
	if !a.Concurrent(c) || !c.Concurrent(a) {
		t.Fatalf("Concurrent broken")
	}
	if a.Less(Vector{1, 2}) {
		t.Fatalf("mismatched lengths must not compare")
	}
}

func TestCollEdgesSemantics(t *testing.T) {
	begin := map[int]int{0: 10, 1: 20, 2: 30}
	end := map[int]int{0: 11, 1: 21, 2: 31}
	cases := []struct {
		op    trace.CollOp
		root  int32
		count int
	}{
		{trace.OpBcast, 0, 2},    // root begin -> 2 member ends
		{trace.OpScatter, 1, 2},  // root begin -> 2 member ends
		{trace.OpReduce, 0, 2},   // 2 member begins -> root end
		{trace.OpGather, 2, 2},   // 2 member begins -> root end
		{trace.OpBarrier, -1, 6}, // all begins -> all other ends
		{trace.OpAllreduce, -1, 6},
	}
	for _, c := range cases {
		edges := CollEdges(trace.Collective{Op: c.op, Root: c.root, Begin: begin, End: end})
		if len(edges) != c.count {
			t.Fatalf("%v: %d edges, want %d", c.op, len(edges), c.count)
		}
		switch c.op {
		case trace.OpBcast, trace.OpScatter:
			for _, e := range edges {
				if e.From.Rank != int(c.root) {
					t.Fatalf("%v: edge from non-root %d", c.op, e.From.Rank)
				}
			}
		case trace.OpReduce, trace.OpGather:
			for _, e := range edges {
				if e.To.Rank != int(c.root) {
					t.Fatalf("%v: edge to non-root %d", c.op, e.To.Rank)
				}
			}
		}
	}
}

func TestCheckOrderCleanAndViolated(t *testing.T) {
	tr := chainTrace()
	bad, err := CheckOrder(tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Fatalf("clean trace reported %d violations", len(bad))
	}
	// now make the receive appear before the send
	tr.Procs[1].Events[0].Time = 0.5
	bad, err = CheckOrder(tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) == 0 {
		t.Fatalf("reversed message not reported")
	}
	// with enough slack it passes again
	bad, err = CheckOrder(tr, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Fatalf("slack not honored: %v", bad)
	}
}

func TestCheckOrderCatchesLocalRegression(t *testing.T) {
	tr := chainTrace()
	tr.Procs[1].Events[1].Time = 1.5 // before the rank's previous event
	bad, err := CheckOrder(tr, 10)   // slack only applies to cross edges
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) == 0 {
		t.Fatalf("local order regression not reported")
	}
}

func TestLogicalClocksOnSimulatedTrace(t *testing.T) {
	// end-to-end: a real simulated trace's true-time order must agree
	// with the vector-clock partial order
	m := topology.Xeon()
	pin, err := topology.InterNode(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	w, err := mpi.NewWorld(mpi.Config{Machine: m, Timer: clock.TSC, Pinning: pin, Seed: 5, Tracing: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(func(r *mpi.Rank) {
		for i := 0; i < 5; i++ {
			if r.Rank() == 0 {
				r.Send(1, i, 64, nil)
			} else if r.Rank() == 1 {
				r.Recv(0, i)
			}
			r.Allreduce(8, nil, nil)
			r.Bcast(2, 128, nil)
		}
	}); err != nil {
		t.Fatal(err)
	}
	tr := w.Trace()
	vc, err := Vectors(tr)
	if err != nil {
		t.Fatal(err)
	}
	edges, err := CrossEdges(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) == 0 {
		t.Fatalf("no cross edges in communicating trace")
	}
	for _, e := range edges {
		if !HappenedBefore(vc, e.From, e.To) {
			t.Fatalf("edge %v not reflected in vector clocks", e)
		}
		fromTrue := tr.Procs[e.From.Rank].Events[e.From.Idx].True
		toTrue := tr.Procs[e.To.Rank].Events[e.To.Idx].True
		if toTrue < fromTrue {
			t.Fatalf("simulator emitted acausal edge: %v", e)
		}
	}
}

func TestLamportDetectsCycle(t *testing.T) {
	// two messages forming an impossible cycle: 0 sends after receiving
	// from 1, and 1 sends after receiving from 0
	tr := &trace.Trace{Procs: []trace.Proc{
		{Rank: 0, Events: []trace.Event{
			{Kind: trace.Recv, Partner: 1},
			{Kind: trace.Send, Partner: 1},
		}},
		{Rank: 1, Events: []trace.Event{
			{Kind: trace.Recv, Partner: 0},
			{Kind: trace.Send, Partner: 0},
		}},
	}}
	if _, err := Lamport(tr); err == nil {
		t.Fatalf("cyclic trace must be rejected")
	}
	if _, err := Vectors(tr); err == nil {
		t.Fatalf("cyclic trace must be rejected by Vectors too")
	}
}

func BenchmarkVectors8x200(b *testing.B) {
	tr := &trace.Trace{}
	const n = 8
	for r := 0; r < n; r++ {
		p := trace.Proc{Rank: r}
		for i := 0; i < 200; i++ {
			dst := (r + 1) % n
			p.Events = append(p.Events,
				trace.Event{Kind: trace.Send, Time: float64(i), True: float64(i), Partner: int32(dst), Tag: int32(i)},
				trace.Event{Kind: trace.Recv, Time: float64(i) + 0.4, True: float64(i) + 0.4, Partner: int32((r - 1 + n) % n), Tag: int32(i)},
			)
		}
		tr.Procs = append(tr.Procs, p)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Vectors(tr); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPOMPEdgesDirect(t *testing.T) {
	tr := &trace.Trace{}
	reg := tr.RegionID("par")
	ev := func(k trace.Kind, tt float64) trace.Event {
		return trace.Event{Kind: k, Time: tt, True: tt, Region: reg, Instance: 0, Partner: -1, Root: -1}
	}
	tr.Procs = []trace.Proc{
		{Rank: 0, Events: []trace.Event{
			ev(trace.Fork, 1.0), ev(trace.Enter, 1.1),
			ev(trace.BarrierEnter, 1.2), ev(trace.BarrierExit, 1.3),
			ev(trace.Exit, 1.4), ev(trace.Join, 1.5),
		}},
		{Rank: 1, Events: []trace.Event{
			ev(trace.Enter, 1.1),
			ev(trace.BarrierEnter, 1.2), ev(trace.BarrierExit, 1.3),
			ev(trace.Exit, 1.4),
		}},
	}
	edges := POMPEdges(tr)
	// fork->worker first (1), lasts->join (1: worker's exit; master's own
	// last == join's rank path excluded for its own ref? master's last is
	// its Exit -> join: 1), barrier pairs (2)
	var forkEdges, joinEdges, barrierEdges int
	for _, e := range edges {
		from := tr.Procs[e.From.Rank].Events[e.From.Idx]
		to := tr.Procs[e.To.Rank].Events[e.To.Idx]
		switch {
		case from.Kind == trace.Fork:
			forkEdges++
		case to.Kind == trace.Join:
			joinEdges++
		case from.Kind == trace.BarrierEnter && to.Kind == trace.BarrierExit:
			barrierEdges++
		}
	}
	if forkEdges != 2 { // master's own first event (Enter) and worker's Enter
		t.Fatalf("fork edges %d, want 2 (edges %v)", forkEdges, edges)
	}
	if joinEdges != 2 { // both threads' last events precede the join
		t.Fatalf("join edges %d, want 2", joinEdges)
	}
	if barrierEdges != 2 { // each thread's enter -> the other's exit
		t.Fatalf("barrier edges %d, want 2", barrierEdges)
	}
}

func TestPOMPEdgesMultipleBarriersPairUp(t *testing.T) {
	tr := &trace.Trace{}
	reg := tr.RegionID("par")
	mk := func(rank int, times ...float64) trace.Proc {
		p := trace.Proc{Rank: rank}
		kinds := []trace.Kind{trace.BarrierEnter, trace.BarrierExit, trace.BarrierEnter, trace.BarrierExit}
		for i, tt := range times {
			p.Events = append(p.Events, trace.Event{
				Kind: kinds[i], Time: tt, True: tt, Region: reg, Instance: 0, Partner: -1, Root: -1})
		}
		return p
	}
	tr.Procs = []trace.Proc{
		mk(0, 1, 2, 3, 4),
		mk(1, 1, 2, 3, 4),
	}
	// no fork/join in this fragment; only barrier pairing matters
	edges := POMPEdges(tr)
	// 2 barriers × 2 directed pairs
	if len(edges) != 4 {
		t.Fatalf("%d edges, want 4: %v", len(edges), edges)
	}
	// the first barrier's enter must pair with the first exit, not the
	// second
	for _, e := range edges {
		fi := tr.Procs[e.From.Rank].Events[e.From.Idx]
		ti := tr.Procs[e.To.Rank].Events[e.To.Idx]
		if stats.ApproxEqual(fi.Time, 1, 1e-12) != stats.ApproxEqual(ti.Time, 2, 1e-12) {
			t.Fatalf("barrier instances cross-paired: %v -> %v", fi.Time, ti.Time)
		}
	}
}

func TestLamportScheduleDirect(t *testing.T) {
	tr := chainTrace()
	tr.Procs[1].Events[0].Time = 0.2 // lying timestamp
	out, err := LamportSchedule(tr, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	// logical schedule restores order on every edge
	bad, err := CheckOrder(out, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Fatalf("lamport schedule left %d order violations", len(bad))
	}
	// timestamps are base + LC*delta
	if got := out.Procs[0].Events[0].Time; got != 0.2+1e-6 {
		t.Fatalf("first event at %v", got)
	}
	if _, err := LamportSchedule(tr, 0); err == nil {
		t.Fatalf("zero delta accepted")
	}
}

func TestLamportScheduleEmptyTrace(t *testing.T) {
	out, err := LamportSchedule(&trace.Trace{}, 1e-6)
	if err != nil || out == nil {
		t.Fatalf("empty trace: %v", err)
	}
}
