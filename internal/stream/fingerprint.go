package stream

import (
	"context"
	"io"

	"tsync/internal/fingerprint"
	"tsync/internal/trace"
)

// fingerprintSink tees the merge walk's raw (oracle, local) timestamp
// pairs into a drift tracker. It is an observer: it never alters the
// edge data traveling the graph, so enabling the fingerprint stage
// cannot change any other pipeline output (the differential tests pin
// that down). Determinism comes for free — the merge walk is
// sequential and delivers each rank's events in file order regardless
// of Workers or Batch, and the tracker is a pure fold over those
// per-rank sequences.
type fingerprintSink struct {
	tr *fingerprint.Tracker
}

func (s *fingerprintSink) event(rank, idx int, ev *trace.Event, mapped float64, in []InEdge) (EdgeData, error) {
	s.tr.Add(rank, ev.True, ev.Time)
	return EdgeData{Raw: ev.Time, Mapped: mapped}, nil
}

func (s *fingerprintSink) final(EventRef) error { return nil }
func (s *fingerprintSink) rankDone(int) error   { return nil }
func (s *fingerprintSink) flush() error         { return nil }

// Fingerprint scans src's raw timestamps in one streaming pass and
// returns the per-rank drift fingerprint report. The scan is
// rank-major, which feeds the tracker the exact per-rank sample
// sequences the merged pipeline walk would, so the report is
// bit-identical to Pipeline's fingerprint stage on the same source.
func Fingerprint(src *Source, opt Options, fpo fingerprint.Options) (*fingerprint.Report, Stats, error) {
	return FingerprintContext(context.Background(), src, opt, fpo)
}

// FingerprintContext is Fingerprint under a context.
func FingerprintContext(ctx context.Context, src *Source, opt Options, fpo fingerprint.Options) (*fingerprint.Report, Stats, error) {
	opt = opt.Normalize()
	var st Stats
	st.Events = src.Events()
	if opt.Salvage || src.Salvaged() {
		st.Loss = src.Losses()
	}
	tr := fingerprint.NewTracker(src.Ranks(), fpo)
	ticks := 0
	var ev trace.Event
	for rank := 0; rank < src.Ranks(); rank++ {
		cur := src.Cursor(rank)
		for {
			if ticks&(ctxCheckEvery-1) == 0 {
				if err := ctx.Err(); err != nil {
					return nil, st, err
				}
			}
			ticks++
			if err := cur.Next(&ev); err == io.EOF {
				break
			} else if err != nil {
				return nil, st, err
			}
			tr.Add(rank, ev.True, ev.Time)
		}
	}
	return tr.Report(), st, nil
}
